"""Two-pass assembler for the ARM-like ISA.

Dialect summary::

            .text
            .func main            ; opens a code block (profiled function)
    main:   mov   r0, #0
            ldr   r1, =array1     ; pseudo: load the address of a symbol
    loop:   ldr   r2, [r1, r0]    ; register-offset addressing
            add   r2, r2, #3
            str   r2, [r1, #4]    ; immediate-offset addressing
            cmp   r0, #100
            blt   loop
            push  {r4-r7, lr}
            pop   {r4-r7, pc}
            halt
            .endfunc

            .data
    array1: .word 1, 2, 3
    buffer: .space 256
    text1:  .asciz "hello"
            .align 4

            .bss
    scratch: .space 1024

Comments start with ``;``, ``@`` or ``//``.  Conditional suffixes (``beq``,
``movne``…) and the ``s`` flag-setting suffix (``adds``, ``subs``…) follow
ARM conventions.  ``ldr rd, =sym`` is lowered to an address-generation move
(one cycle, no memory access), mirroring how compilers for SPM-based systems
materialise block base addresses.

Every label in ``.data``/``.bss`` opens a new *data object* (the paper's
data blocks); ``.func name`` … ``.endfunc`` delimit *code blocks*.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import AssemblyError, EncodingError
from .instructions import (
    ALWAYS_SETS_FLAGS,
    Condition,
    INSTRUCTION_BYTES,
    Instruction,
    Mnemonic,
    OPERAND_COUNTS,
    Operand,
    imm,
    label_ref,
    reg,
    reg_list,
)
from .program import (
    CodeBlock,
    DATA_BASE,
    DataObject,
    Program,
    Section,
    TEXT_BASE,
)
from .registers import register_number

_MNEMONICS = {m.value: m for m in Mnemonic}
_CONDITIONS = {c.value: c for c in Condition if c is not Condition.AL}
# ARM aliases for the unsigned conditions
_CONDITIONS["cs"] = Condition.HS
_CONDITIONS["cc"] = Condition.LO

_FLAG_SETTING_OK = frozenset({
    Mnemonic.MOV, Mnemonic.MVN, Mnemonic.ADD, Mnemonic.SUB, Mnemonic.RSB,
    Mnemonic.MUL, Mnemonic.MLA, Mnemonic.AND, Mnemonic.ORR, Mnemonic.EOR,
    Mnemonic.BIC, Mnemonic.LSL, Mnemonic.LSR, Mnemonic.ASR,
})

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$")
_SYMBOL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")
_SYMBOL_OFFSET_RE = re.compile(
    r"^([A-Za-z_.$][\w.$]*)\s*([+-])\s*(\d+|0[xX][0-9a-fA-F]+)$")


def _strip_comment(line):
    in_string = False
    for index, char in enumerate(line):
        if char == '"':
            in_string = not in_string
        elif not in_string:
            if char in ";@":
                return line[:index]
            if char == "/" and line[index:index + 2] == "//":
                return line[:index]
    return line


def _parse_int(text, line_no, source):
    text = text.strip()
    negative = text.startswith("-")
    if negative:
        text = text[1:].strip()
    try:
        if text.lower().startswith("0x"):
            value = int(text, 16)
        elif text.startswith("'") and text.endswith("'") and len(text) >= 3:
            body = text[1:-1]
            if body.startswith("\\"):
                escapes = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39}
                if body[1:] not in escapes:
                    raise ValueError(body)
                value = escapes[body[1:]]
            else:
                if len(body) != 1:
                    raise ValueError(body)
                value = ord(body)
        else:
            value = int(text, 10)
    except ValueError:
        raise AssemblyError("invalid integer literal %r" % text,
                            line=line_no, source_line=source,
                            rule="asm.bad-literal") from None
    return -value if negative else value


def _split_operands(text):
    """Split an operand string on top-level commas.

    Commas inside ``[...]``, ``{...}`` and string quotes do not split.
    """
    parts = []
    depth = 0
    in_string = False
    current = []
    for char in text:
        if char == '"':
            in_string = not in_string
            current.append(char)
        elif in_string:
            current.append(char)
        elif char in "[{(":
            depth += 1
            current.append(char)
        elif char in "]})":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


@dataclass
class _PendingInstruction:
    address: int
    mnemonic: Mnemonic
    condition: Condition
    set_flags: bool
    operand_texts: list
    line_no: int
    source: str
    label: str = ""


@dataclass
class _PendingFunc:
    name: str
    start: int
    line_no: int


@dataclass
class _DataLabel:
    name: str
    offset: int  # offset within the data image


class _Assembler:
    """Internal two-pass assembler state machine."""

    def __init__(self, source, name):
        self.source = source
        self.name = name
        self.section = Section.TEXT
        self.text_cursor = TEXT_BASE
        self.pending = []  # _PendingInstruction
        self.data = bytearray()
        self.symbols = {}
        self.data_labels = []  # _DataLabel, in order
        self.code_blocks = []
        self.open_func = None
        self.entry_symbol = None
        self.pending_code_label = None

    # --- pass 1 -----------------------------------------------------------

    def run(self):
        for line_no, raw in enumerate(self.source.splitlines(), start=1):
            line = _strip_comment(raw).strip()
            if not line:
                continue
            self._consume_line(line, line_no, raw)
        if self.open_func is not None:
            raise AssemblyError(
                "function %r is missing .endfunc" % self.open_func.name,
                line=self.open_func.line_no, rule="asm.structure")
        return self._link()

    def _consume_line(self, line, line_no, raw):
        match = _LABEL_RE.match(line)
        if match:
            self._define_label(match.group(1), line_no, raw)
            line = match.group(2).strip()
            if not line:
                return
        if line.startswith("."):
            self._directive(line, line_no, raw)
        else:
            self._instruction_line(line, line_no, raw)

    def _define_label(self, name, line_no, raw):
        if name in self.symbols or any(
                label.name == name for label in self.data_labels):
            raise AssemblyError("duplicate label %r" % name,
                                line=line_no, source_line=raw,
                                rule="asm.duplicate-label")
        if self.section is Section.TEXT:
            self.symbols[name] = self.text_cursor
            self.pending_code_label = name
        else:
            self.data_labels.append(_DataLabel(name, len(self.data)))

    # --- directives ---------------------------------------------------------

    def _directive(self, line, line_no, raw):
        parts = line.split(None, 1)
        directive = parts[0].lower()
        argument = parts[1].strip() if len(parts) > 1 else ""
        handler = getattr(self, "_dir_" + directive[1:], None)
        if handler is None:
            raise AssemblyError("unknown directive %r" % directive,
                                line=line_no, source_line=raw,
                                rule="asm.unknown-directive")
        handler(argument, line_no, raw)

    def _dir_text(self, argument, line_no, raw):
        self.section = Section.TEXT

    def _dir_data(self, argument, line_no, raw):
        self.section = Section.DATA

    def _dir_bss(self, argument, line_no, raw):
        self.section = Section.BSS

    def _dir_global(self, argument, line_no, raw):
        if not _SYMBOL_RE.match(argument):
            raise AssemblyError(".global needs a symbol name",
                                line=line_no, source_line=raw,
                                rule="asm.structure")
        # Visibility is not modelled; .global is accepted for familiarity.

    def _dir_entry(self, argument, line_no, raw):
        if not _SYMBOL_RE.match(argument):
            raise AssemblyError(".entry needs a symbol name",
                                line=line_no, source_line=raw,
                                rule="asm.structure")
        self.entry_symbol = argument

    def _dir_func(self, argument, line_no, raw):
        if self.section is not Section.TEXT:
            raise AssemblyError(".func is only valid in .text",
                                line=line_no, source_line=raw,
                                rule="asm.structure")
        if self.open_func is not None:
            raise AssemblyError(
                "nested .func (%r is still open)" % self.open_func.name,
                line=line_no, source_line=raw,
                                rule="asm.structure")
        if not _SYMBOL_RE.match(argument):
            raise AssemblyError(".func needs a function name",
                                line=line_no, source_line=raw)
        self.open_func = _PendingFunc(argument, self.text_cursor, line_no)

    def _dir_endfunc(self, argument, line_no, raw):
        if self.open_func is None:
            raise AssemblyError(".endfunc without .func",
                                line=line_no, source_line=raw,
                                rule="asm.structure")
        func = self.open_func
        self.open_func = None
        if self.text_cursor == func.start:
            raise AssemblyError("function %r has no instructions" % func.name,
                                line=line_no, source_line=raw,
                                rule="asm.structure")
        self.code_blocks.append(
            CodeBlock(func.name, func.start, self.text_cursor))

    def _require_data_section(self, directive, line_no, raw):
        if self.section is Section.TEXT:
            raise AssemblyError("%s is only valid in .data/.bss" % directive,
                                line=line_no, source_line=raw,
                                rule="asm.structure")

    def _dir_word(self, argument, line_no, raw):
        self._require_data_section(".word", line_no, raw)
        if self.section is Section.BSS:
            raise AssemblyError(".word is not allowed in .bss",
                                line=line_no, source_line=raw,
                                rule="asm.structure")
        self._dir_align("4", line_no, raw)
        for item in _split_operands(argument):
            value = _parse_int(item, line_no, raw) & 0xFFFFFFFF
            self.data += value.to_bytes(4, "little")

    def _dir_half(self, argument, line_no, raw):
        self._require_data_section(".half", line_no, raw)
        for item in _split_operands(argument):
            value = _parse_int(item, line_no, raw) & 0xFFFF
            self.data += value.to_bytes(2, "little")

    def _dir_byte(self, argument, line_no, raw):
        self._require_data_section(".byte", line_no, raw)
        for item in _split_operands(argument):
            self.data.append(_parse_int(item, line_no, raw) & 0xFF)

    def _dir_space(self, argument, line_no, raw):
        self._require_data_section(".space", line_no, raw)
        parts = _split_operands(argument)
        size = _parse_int(parts[0], line_no, raw)
        fill = _parse_int(parts[1], line_no, raw) & 0xFF if len(parts) > 1 else 0
        if size < 0:
            raise AssemblyError(".space size must be non-negative",
                                line=line_no, source_line=raw,
                                rule="asm.structure")
        self.data += bytes([fill]) * size

    def _dir_asciz(self, argument, line_no, raw):
        self._require_data_section(".asciz", line_no, raw)
        self._append_string(argument, line_no, raw)
        self.data.append(0)

    def _dir_ascii(self, argument, line_no, raw):
        self._require_data_section(".ascii", line_no, raw)
        self._append_string(argument, line_no, raw)

    def _append_string(self, argument, line_no, raw):
        if not (argument.startswith('"') and argument.endswith('"')
                and len(argument) >= 2):
            raise AssemblyError("string directives need a quoted string",
                                line=line_no, source_line=raw,
                                rule="asm.structure")
        body = argument[1:-1]
        decoded = body.encode("ascii").decode("unicode_escape")
        self.data += decoded.encode("latin-1")

    def _dir_align(self, argument, line_no, raw):
        boundary = _parse_int(argument or "4", line_no, raw)
        if boundary <= 0 or boundary & (boundary - 1):
            raise AssemblyError(".align needs a power of two",
                                line=line_no, source_line=raw,
                                rule="asm.structure")
        if self.section is Section.TEXT:
            return  # instructions are always 4-byte aligned
        while len(self.data) % boundary:
            self.data.append(0)

    # --- instructions -------------------------------------------------------

    def _instruction_line(self, line, line_no, raw):
        if self.section is not Section.TEXT:
            raise AssemblyError("instructions are only valid in .text",
                                line=line_no, source_line=raw,
                                rule="asm.structure")
        parts = line.split(None, 1)
        token = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        mnemonic, condition, set_flags = self._decode_mnemonic(
            token, line_no, raw)
        operand_texts = _split_operands(operand_text)
        label = self.pending_code_label or ""
        self.pending_code_label = None
        self.pending.append(_PendingInstruction(
            address=self.text_cursor,
            mnemonic=mnemonic,
            condition=condition,
            set_flags=set_flags,
            operand_texts=operand_texts,
            line_no=line_no,
            source=raw,
            label=label,
        ))
        self.text_cursor += INSTRUCTION_BYTES

    def _decode_mnemonic(self, token, line_no, raw):
        candidates = sorted(_MNEMONICS, key=len, reverse=True)
        for base in candidates:
            if not token.startswith(base):
                continue
            suffix = token[len(base):]
            mnemonic = _MNEMONICS[base]
            condition = Condition.AL
            set_flags = False
            # 's' may precede the condition (UAL "addseq") or trail it
            # (pre-UAL "addeqs"); both are accepted.  No condition name
            # starts with 's', so the forms cannot collide.
            if (suffix.startswith("s") and len(suffix) == 3
                    and suffix[1:] in _CONDITIONS
                    and mnemonic in _FLAG_SETTING_OK):
                set_flags = True
                suffix = suffix[1:]
            elif suffix.endswith("s") and len(suffix) in (1, 3):
                if mnemonic in _FLAG_SETTING_OK:
                    set_flags = True
                    suffix = suffix[:-1]
            if suffix:
                if suffix not in _CONDITIONS:
                    continue
                condition = _CONDITIONS[suffix]
            if mnemonic in ALWAYS_SETS_FLAGS:
                set_flags = True
            return mnemonic, condition, set_flags
        raise AssemblyError("unknown instruction %r" % token,
                            line=line_no, source_line=raw,
                            rule="asm.unknown-instruction")

    # --- pass 2: linking ------------------------------------------------------

    def _link(self):
        symbols = dict(self.symbols)
        for label in self.data_labels:
            symbols[label.name] = DATA_BASE + label.offset

        data_objects = []
        for index, label in enumerate(self.data_labels):
            if index + 1 < len(self.data_labels):
                end = self.data_labels[index + 1].offset
            else:
                end = len(self.data)
            size = end - label.offset
            if size > 0:
                data_objects.append(
                    DataObject(label.name, DATA_BASE + label.offset, size))

        instructions = {}
        for pending in self.pending:
            instructions[pending.address] = self._encode(pending, symbols)

        entry = TEXT_BASE
        entry_name = self.entry_symbol or (
            "main" if "main" in symbols else None)
        if entry_name is not None:
            if entry_name not in symbols:
                raise AssemblyError("entry symbol %r is undefined"
                                    % entry_name,
                                    rule="asm.undefined-label")
            entry = symbols[entry_name]

        program = Program(
            instructions=instructions,
            data=self.data,
            symbols=symbols,
            code_blocks=list(self.code_blocks),
            data_objects=data_objects,
            entry=entry,
            source_name=self.name,
        )
        return program.validate()

    def _encode(self, pending, symbols):
        operands = []
        for text in pending.operand_texts:
            operands.extend(self._parse_operand(text, pending, symbols))
        minimum, maximum = OPERAND_COUNTS[pending.mnemonic]
        if not minimum <= len(operands) <= maximum:
            raise EncodingError(
                "%s expects %s operand(s), got %d"
                % (pending.mnemonic.value,
                   minimum if minimum == maximum
                   else "%d..%d" % (minimum, maximum),
                   len(operands)),
                line=pending.line_no, source_line=pending.source)
        self._check_operand_shapes(pending, operands)
        return Instruction(
            mnemonic=pending.mnemonic,
            operands=tuple(operands),
            condition=pending.condition,
            set_flags=pending.set_flags,
            source_line=pending.line_no,
            label=pending.label,
            source_text=pending.source,
        )

    def _parse_operand(self, text, pending, symbols):
        text = text.strip()
        line_no, source = pending.line_no, pending.source
        if text.startswith("#"):
            return [imm(self._resolve_value(text[1:], symbols,
                                            line_no, source))]
        if text.startswith("="):
            return [imm(self._resolve_value(text[1:], symbols,
                                            line_no, source))]
        if text.startswith("[") and text.endswith("]"):
            inner = _split_operands(text[1:-1])
            if not 1 <= len(inner) <= 2:
                raise EncodingError("bad addressing mode %r" % text,
                                    line=line_no, source_line=source)
            base = reg(register_number(inner[0]))
            if len(inner) == 1:
                return [base, imm(0)]
            offset_text = inner[1].strip()
            if offset_text.startswith("#"):
                return [base, imm(self._resolve_value(
                    offset_text[1:], symbols, line_no, source))]
            return [base, reg(register_number(offset_text))]
        if text.startswith("{") and text.endswith("}"):
            return [reg_list(self._parse_register_list(
                text[1:-1], line_no, source))]
        try:
            return [reg(register_number(text))]
        except AssemblyError:
            pass
        if pending.mnemonic.is_branch if isinstance(
                pending.mnemonic, Instruction) else pending.mnemonic in (
                Mnemonic.B, Mnemonic.BL):
            if _SYMBOL_RE.match(text):
                if text not in symbols:
                    raise EncodingError("undefined label %r" % text,
                                        line=line_no, source_line=source,
                                        rule="asm.undefined-label")
                return [imm(symbols[text])]
        if _SYMBOL_RE.match(text) or _SYMBOL_OFFSET_RE.match(text):
            return [imm(self._resolve_value(text, symbols, line_no, source))]
        raise EncodingError("cannot parse operand %r" % text,
                            line=line_no, source_line=source)

    def _resolve_value(self, text, symbols, line_no, source):
        text = text.strip()
        if _SYMBOL_RE.match(text) and not re.match(r"^-?\d", text):
            if text not in symbols:
                raise EncodingError("undefined symbol %r" % text,
                                    line=line_no, source_line=source,
                                    rule="asm.undefined-label")
            return symbols[text]
        match = _SYMBOL_OFFSET_RE.match(text)
        if match:
            name, sign, offset_text = match.groups()
            if name not in symbols:
                raise EncodingError("undefined symbol %r" % name,
                                    line=line_no, source_line=source,
                                    rule="asm.undefined-label")
            offset = _parse_int(offset_text, line_no, source)
            return symbols[name] + (offset if sign == "+" else -offset)
        return _parse_int(text, line_no, source)

    def _parse_register_list(self, body, line_no, source):
        numbers = []
        for item in _split_operands(body):
            if "-" in item:
                low_text, high_text = item.split("-", 1)
                low = register_number(low_text)
                high = register_number(high_text)
                if high < low:
                    raise EncodingError("inverted register range %r" % item,
                                        line=line_no, source_line=source)
                numbers.extend(range(low, high + 1))
            else:
                numbers.append(register_number(item))
        if not numbers:
            raise EncodingError("empty register list",
                                line=line_no, source_line=source)
        if len(set(numbers)) != len(numbers):
            raise EncodingError("duplicate register in list",
                                line=line_no, source_line=source)
        return sorted(numbers)

    def _check_operand_shapes(self, pending, operands):
        mnemonic = pending.mnemonic
        line_no, source = pending.line_no, pending.source

        def require(condition, message):
            if not condition:
                raise EncodingError(message, line=line_no, source_line=source)

        if mnemonic in (Mnemonic.PUSH, Mnemonic.POP):
            require(operands[0].is_register_list,
                    "%s needs a register list" % mnemonic.value)
        elif mnemonic in (Mnemonic.B, Mnemonic.BL):
            require(operands[0].is_immediate,
                    "%s needs a label or address" % mnemonic.value)
        elif mnemonic is Mnemonic.BX:
            require(operands[0].is_register, "bx needs a register")
        elif mnemonic in (Mnemonic.LDR, Mnemonic.STR,
                          Mnemonic.LDRB, Mnemonic.STRB):
            require(operands[0].is_register,
                    "%s needs a register destination" % mnemonic.value)
            if len(operands) == 3:
                require(operands[1].is_register,
                        "%s base must be a register" % mnemonic.value)
            else:
                # "ldr rd, =x" was lowered to an immediate operand pair
                require(len(operands) == 2 and operands[1].is_immediate,
                        "%s needs an addressing mode" % mnemonic.value)
        elif mnemonic in (Mnemonic.MUL, Mnemonic.MLA,
                          Mnemonic.SDIV, Mnemonic.UDIV):
            require(all(op.is_register for op in operands),
                    "%s operands must all be registers" % mnemonic.value)
        elif mnemonic not in (Mnemonic.NOP, Mnemonic.HALT):
            require(operands[0].is_register,
                    "%s first operand must be a register" % mnemonic.value)


def assemble(source, name="<assembly>"):
    """Assemble ``source`` text into a :class:`~repro.isa.program.Program`.

    Raises :class:`~repro.errors.AssemblyError` (with line information) on
    any syntactic or semantic problem.
    """
    return _Assembler(source, name).run()
