"""Register file conventions for the ARM-like ISA.

Sixteen general-purpose registers, with the usual ARM aliases:

* ``r0``–``r3``: argument / scratch registers,
* ``r4``–``r10``: callee-saved,
* ``r11`` / ``fp``: frame pointer,
* ``r13`` / ``sp``: stack pointer,
* ``r14`` / ``lr``: link register,
* ``r15`` / ``pc``: program counter.
"""

from __future__ import annotations

from ..errors import AssemblyError

NUM_REGISTERS = 16

FP = 11
SP = 13
LR = 14
PC = 15

_ALIASES = {
    "fp": FP,
    "ip": 12,
    "sp": SP,
    "lr": LR,
    "pc": PC,
}

_ALIAS_NAMES = {number: name for name, number in _ALIASES.items()}


def register_number(name):
    """Parse a register name (``r0``..``r15`` or an alias) to its number."""
    text = name.strip().lower()
    if text in _ALIASES:
        return _ALIASES[text]
    if text.startswith("r"):
        try:
            number = int(text[1:], 10)
        except ValueError:
            raise AssemblyError("invalid register name %r" % name) from None
        if 0 <= number < NUM_REGISTERS:
            return number
    raise AssemblyError("invalid register name %r" % name)


def register_name(number):
    """Render a register number with its conventional alias when one exists."""
    if not 0 <= number < NUM_REGISTERS:
        raise ValueError("register number out of range: %r" % number)
    return _ALIAS_NAMES.get(number, "r%d" % number)
