"""Disassembler: render decoded instructions back to assembly text.

Used by the CLI's trace dumps and by tests that round-trip the assembler.
"""

from __future__ import annotations

from .instructions import Condition, Instruction, Mnemonic, OperandKind
from .registers import register_name

_MEMORY_FORMS = (Mnemonic.LDR, Mnemonic.STR, Mnemonic.LDRB, Mnemonic.STRB)


def _format_operand(operand):
    if operand.kind is OperandKind.REGISTER:
        return register_name(operand.value)
    if operand.kind is OperandKind.IMMEDIATE:
        value = operand.value
        if abs(value) >= 4096:
            return "#0x%x" % value if value >= 0 else "#-0x%x" % -value
        return "#%d" % value
    if operand.kind is OperandKind.LABEL:
        return str(operand.value)
    if operand.kind is OperandKind.REGISTER_LIST:
        return "{%s}" % ", ".join(register_name(n) for n in operand.value)
    raise ValueError("unknown operand kind %r" % operand.kind)


def disassemble(instruction, symbols_by_address=None):
    """Render one :class:`Instruction` as a line of assembly.

    ``symbols_by_address`` optionally maps addresses back to label names so
    branch targets print symbolically.
    """
    mnemonic = instruction.mnemonic.value
    if instruction.set_flags and instruction.mnemonic not in (
            Mnemonic.CMP, Mnemonic.CMN, Mnemonic.TST):
        mnemonic += "s"
    if instruction.condition is not Condition.AL:
        mnemonic += instruction.condition.value

    operands = list(instruction.operands)
    if (instruction.mnemonic in _MEMORY_FORMS and len(operands) == 3):
        base = _format_operand(operands[1])
        offset = operands[2]
        if offset.kind is OperandKind.IMMEDIATE and offset.value == 0:
            address_text = "[%s]" % base
        else:
            address_text = "[%s, %s]" % (base, _format_operand(offset))
        return "%s %s, %s" % (
            mnemonic, _format_operand(operands[0]), address_text)

    if (instruction.mnemonic in (Mnemonic.B, Mnemonic.BL)
            and operands and operands[0].kind is OperandKind.IMMEDIATE):
        target = operands[0].value
        if symbols_by_address and target in symbols_by_address:
            return "%s %s" % (mnemonic, symbols_by_address[target])
        return "%s 0x%08x" % (mnemonic, target)

    if not operands:
        return mnemonic
    return "%s %s" % (
        mnemonic, ", ".join(_format_operand(op) for op in operands))


def disassemble_program(program):
    """Yield ``(address, text)`` pairs for every instruction in a program."""
    symbols_by_address = {
        address: name for name, address in program.symbols.items()}
    for address, instruction in program.iter_instructions():
        yield address, disassemble(instruction, symbols_by_address)
