"""Instruction and operand data structures for the ARM-like ISA.

An :class:`Instruction` is a decoded object (mnemonic, condition, operands)
rather than a binary word: the simulator is trace-driven at the level the
paper's methodology needs (per-access addresses, sizes, and cycle costs), so
binary encodings would add nothing but bookkeeping.  Instructions still
occupy four bytes of instruction-address space each, so instruction-SPM
capacity and fetch accounting behave exactly as for fixed-width ARM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Mnemonic(enum.Enum):
    """Every operation the core can execute."""

    # data processing
    MOV = "mov"
    MVN = "mvn"
    ADD = "add"
    SUB = "sub"
    RSB = "rsb"
    MUL = "mul"
    MLA = "mla"
    SDIV = "sdiv"
    UDIV = "udiv"
    AND = "and"
    ORR = "orr"
    EOR = "eor"
    BIC = "bic"
    LSL = "lsl"
    LSR = "lsr"
    ASR = "asr"
    CMP = "cmp"
    CMN = "cmn"
    TST = "tst"
    # memory
    LDR = "ldr"
    STR = "str"
    LDRB = "ldrb"
    STRB = "strb"
    PUSH = "push"
    POP = "pop"
    # control flow
    B = "b"
    BL = "bl"
    BX = "bx"
    # misc
    NOP = "nop"
    HALT = "halt"


class Condition(enum.Enum):
    """Branch/execution conditions (a subset of ARM condition codes)."""

    AL = "al"  # always
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    MI = "mi"
    PL = "pl"
    HS = "hs"  # unsigned >=  (a.k.a. CS)
    LO = "lo"  # unsigned <   (a.k.a. CC)
    HI = "hi"  # unsigned >
    LS = "ls"  # unsigned <=


class OperandKind(enum.Enum):
    """Discriminates the payload of an :class:`Operand`."""

    REGISTER = "register"
    IMMEDIATE = "immediate"
    LABEL = "label"
    REGISTER_LIST = "register-list"


@dataclass(frozen=True)
class Operand:
    """One instruction operand.

    ``value`` is a register number, an integer immediate, a label string,
    or a tuple of register numbers, depending on ``kind``.
    """

    kind: OperandKind
    value: object

    @property
    def is_register(self):
        return self.kind is OperandKind.REGISTER

    @property
    def is_immediate(self):
        return self.kind is OperandKind.IMMEDIATE

    @property
    def is_label(self):
        return self.kind is OperandKind.LABEL

    @property
    def is_register_list(self):
        return self.kind is OperandKind.REGISTER_LIST


def reg(number):
    """Build a register operand."""
    return Operand(OperandKind.REGISTER, number)


def imm(value):
    """Build an immediate operand."""
    return Operand(OperandKind.IMMEDIATE, int(value))


def label_ref(name):
    """Build a label-reference operand (resolved by the assembler)."""
    return Operand(OperandKind.LABEL, name)


def reg_list(numbers):
    """Build a register-list operand for PUSH/POP."""
    return Operand(OperandKind.REGISTER_LIST, tuple(numbers))


# Addressing for LDR/STR: [base, offset] where offset is a register or an
# immediate.  Modelled as a pair of operands on the instruction:
# operands = (rd, base, offset).

INSTRUCTION_BYTES = 4


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction at a fixed instruction-space address."""

    mnemonic: Mnemonic
    operands: tuple = ()
    condition: Condition = Condition.AL
    set_flags: bool = False
    source_line: int = 0
    label: str = field(default="", compare=False)
    #: the raw source text the instruction was assembled from (excluded
    #: from equality, like ``label``) — lets diagnostics quote the
    #: offending line without re-reading the source file
    source_text: str = field(default="", compare=False)

    @property
    def span(self):
        """The instruction's source span, or None when synthesized."""
        if self.source_line <= 0:
            return None
        from ..diagnostics import SourceSpan
        return SourceSpan.line(self.source_line)

    @property
    def is_branch(self):
        return self.mnemonic in (Mnemonic.B, Mnemonic.BL, Mnemonic.BX)

    @property
    def is_memory_access(self):
        return self.mnemonic in (
            Mnemonic.LDR, Mnemonic.STR, Mnemonic.LDRB, Mnemonic.STRB,
            Mnemonic.PUSH, Mnemonic.POP,
        )

    @property
    def is_store(self):
        return self.mnemonic in (Mnemonic.STR, Mnemonic.STRB, Mnemonic.PUSH)

    @property
    def is_load(self):
        return self.mnemonic in (Mnemonic.LDR, Mnemonic.LDRB, Mnemonic.POP)


# --- static shape table, used by both assembler and executor ---------------

#: mnemonic -> (min operands, max operands)
OPERAND_COUNTS = {
    Mnemonic.MOV: (2, 2),
    Mnemonic.MVN: (2, 2),
    Mnemonic.ADD: (3, 3),
    Mnemonic.SUB: (3, 3),
    Mnemonic.RSB: (3, 3),
    Mnemonic.MUL: (3, 3),
    Mnemonic.MLA: (4, 4),
    Mnemonic.SDIV: (3, 3),
    Mnemonic.UDIV: (3, 3),
    Mnemonic.AND: (3, 3),
    Mnemonic.ORR: (3, 3),
    Mnemonic.EOR: (3, 3),
    Mnemonic.BIC: (3, 3),
    Mnemonic.LSL: (3, 3),
    Mnemonic.LSR: (3, 3),
    Mnemonic.ASR: (3, 3),
    Mnemonic.CMP: (2, 2),
    Mnemonic.CMN: (2, 2),
    Mnemonic.TST: (2, 2),
    Mnemonic.LDR: (2, 3),
    Mnemonic.STR: (2, 3),
    Mnemonic.LDRB: (2, 3),
    Mnemonic.STRB: (2, 3),
    Mnemonic.PUSH: (1, 1),
    Mnemonic.POP: (1, 1),
    Mnemonic.B: (1, 1),
    Mnemonic.BL: (1, 1),
    Mnemonic.BX: (1, 1),
    Mnemonic.NOP: (0, 0),
    Mnemonic.HALT: (0, 0),
}

#: mnemonics whose first operand is written (destination register)
WRITES_FIRST_OPERAND = frozenset({
    Mnemonic.MOV, Mnemonic.MVN, Mnemonic.ADD, Mnemonic.SUB, Mnemonic.RSB,
    Mnemonic.MUL, Mnemonic.MLA, Mnemonic.SDIV, Mnemonic.UDIV,
    Mnemonic.AND, Mnemonic.ORR, Mnemonic.EOR, Mnemonic.BIC,
    Mnemonic.LSL, Mnemonic.LSR, Mnemonic.ASR,
    Mnemonic.LDR, Mnemonic.LDRB,
})

#: mnemonics that always update the condition flags
ALWAYS_SETS_FLAGS = frozenset({Mnemonic.CMP, Mnemonic.CMN, Mnemonic.TST})
