"""Loadable program image produced by the assembler.

A :class:`Program` carries:

* the decoded instruction at each text address (4 bytes apart),
* the initial bytes of the data section,
* a symbol table,
* the **code blocks** (functions) and **data objects** (arrays, scalars)
  that the profiler and the MDA mapping algorithm reason about.  These are
  exactly the "program blocks" of the paper: code blocks come from
  ``.func``/``.endfunc`` markers, data objects from labelled allocations in
  ``.data``/``.bss``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import AssemblyError
from .instructions import INSTRUCTION_BYTES

TEXT_BASE = 0x0001_0000
DATA_BASE = 0x0010_0000
STACK_TOP = 0x0020_0000
DEFAULT_STACK_SIZE = 0x8000  # 32 KB of stack address space


class Section(enum.Enum):
    """Assembler sections."""

    TEXT = "text"
    DATA = "data"
    BSS = "bss"


@dataclass(frozen=True)
class CodeBlock:
    """A function: a contiguous range of instruction addresses."""

    name: str
    start: int
    end: int  # exclusive

    @property
    def size(self):
        return self.end - self.start

    def contains(self, address):
        return self.start <= address < self.end


@dataclass(frozen=True)
class DataObject:
    """A labelled data allocation: a contiguous range of data addresses."""

    name: str
    start: int
    size: int

    @property
    def end(self):
        return self.start + self.size

    def contains(self, address):
        return self.start <= address < self.end


@dataclass
class Program:
    """An assembled program, ready to be loaded into a machine."""

    instructions: dict = field(default_factory=dict)  # addr -> Instruction
    data: bytearray = field(default_factory=bytearray)
    data_base: int = DATA_BASE
    text_base: int = TEXT_BASE
    entry: int = TEXT_BASE
    symbols: dict = field(default_factory=dict)  # name -> address
    code_blocks: list = field(default_factory=list)
    data_objects: list = field(default_factory=list)
    stack_top: int = STACK_TOP
    stack_size: int = DEFAULT_STACK_SIZE
    source_name: str = "<assembly>"

    @property
    def text_size(self):
        """Bytes of instruction-address space occupied by the program."""
        return len(self.instructions) * INSTRUCTION_BYTES

    @property
    def data_size(self):
        return len(self.data)

    @property
    def text_end(self):
        return self.text_base + self.text_size

    @property
    def data_end(self):
        return self.data_base + self.data_size

    def symbol(self, name):
        """Resolve a symbol to its address; raise on unknown names."""
        try:
            return self.symbols[name]
        except KeyError:
            raise AssemblyError("unknown symbol %r" % name) from None

    def instruction_at(self, address):
        """Return the instruction at ``address`` or None."""
        return self.instructions.get(address)

    def code_block_at(self, address):
        """Return the code block containing an instruction address."""
        for block in self.code_blocks:
            if block.contains(address):
                return block
        return None

    def data_object_at(self, address):
        """Return the data object containing a data address."""
        for obj in self.data_objects:
            if obj.contains(address):
                return obj
        return None

    def iter_instructions(self):
        """Yield ``(address, instruction)`` in address order."""
        for address in sorted(self.instructions):
            yield address, self.instructions[address]

    def validate(self):
        """Check internal consistency; raise AssemblyError on problems."""
        for block in self.code_blocks:
            if block.start % INSTRUCTION_BYTES:
                raise AssemblyError(
                    "code block %r is misaligned" % block.name)
            if block.end <= block.start:
                raise AssemblyError(
                    "code block %r is empty or inverted" % block.name)
        previous_end = None
        for obj in sorted(self.data_objects, key=lambda o: o.start):
            if previous_end is not None and obj.start < previous_end:
                raise AssemblyError(
                    "data object %r overlaps its predecessor" % obj.name)
            previous_end = obj.end
        if self.entry not in self.instructions:
            raise AssemblyError(
                "entry point 0x%08x has no instruction" % self.entry)
        return self
