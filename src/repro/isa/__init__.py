"""A small ARM-like instruction set, assembler, and program image.

This package is the FaCSim substitute's front end: workloads are written in
a compact ARM-flavoured assembly dialect, assembled into a
:class:`~repro.isa.program.Program`, and executed by
:mod:`repro.sim` against a configurable memory hierarchy.

Public surface:

* :func:`assemble` — assemble source text into a :class:`Program`.
* :class:`Program` — the loadable image (instructions, data, symbols,
  code blocks, data objects).
* :class:`Instruction`, :data:`Mnemonic`, :class:`Operand` helpers.
* :func:`disassemble` — render an instruction back to text.
"""

from .instructions import (
    Condition,
    Instruction,
    Mnemonic,
    Operand,
    OperandKind,
    imm,
    label_ref,
    reg,
    reg_list,
)
from .registers import (
    FP,
    LR,
    NUM_REGISTERS,
    PC,
    SP,
    register_name,
    register_number,
)
from .program import CodeBlock, DataObject, Program, Section
from .assembler import assemble
from .disasm import disassemble

__all__ = [
    "Condition",
    "Instruction",
    "Mnemonic",
    "Operand",
    "OperandKind",
    "imm",
    "label_ref",
    "reg",
    "reg_list",
    "FP",
    "LR",
    "NUM_REGISTERS",
    "PC",
    "SP",
    "register_name",
    "register_number",
    "CodeBlock",
    "DataObject",
    "Program",
    "Section",
    "assemble",
    "disassemble",
]
