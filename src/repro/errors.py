"""Exception hierarchy for the FTSPM reproduction.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one type to handle any library failure.  Sub-hierarchies
mirror the subsystems: assembly/ISA errors, simulation errors, memory-system
errors, and mapping errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class AssemblyError(ReproError):
    """Raised when assembly source cannot be assembled.

    Carries the source line number (1-based) when known.
    """

    def __init__(self, message, line=None, source_line=None):
        self.line = line
        self.source_line = source_line
        if line is not None:
            message = "line %d: %s" % (line, message)
            if source_line is not None:
                message = "%s\n    %s" % (message, source_line.strip())
        super().__init__(message)


class EncodingError(AssemblyError):
    """Raised when an instruction cannot be encoded (bad operands, range)."""


class SimulationError(ReproError):
    """Base class for errors that occur while simulating a program."""


class IllegalInstructionError(SimulationError):
    """Raised when the CPU fetches an undecodable instruction word."""


class MemoryAccessError(SimulationError):
    """Raised on an access outside every mapped device, or misaligned."""

    def __init__(self, message, address=None):
        self.address = address
        if address is not None:
            message = "%s (address=0x%08x)" % (message, address)
        super().__init__(message)


class ExecutionLimitExceeded(SimulationError):
    """Raised when a program runs past the configured instruction budget."""


class ConfigurationError(ReproError):
    """Raised for inconsistent or impossible system configurations."""


class MappingError(ReproError):
    """Raised when a mapping algorithm cannot produce a legal placement."""


class ProfileError(ReproError):
    """Raised when profiling input is malformed or incomplete."""


class FaultInjectionError(ReproError):
    """Raised for invalid fault-injection campaign parameters."""


class CampaignError(FaultInjectionError):
    """Raised for campaign orchestration failures.

    Covers bad campaign specifications, run-directory/manifest mismatches
    on resume, and shards that exhaust their retry budget.
    """


class TraceError(ReproError):
    """Raised when a trace stream is malformed or cannot be replayed."""
