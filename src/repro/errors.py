"""Exception hierarchy for the FTSPM reproduction.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one type to handle any library failure.  Sub-hierarchies
mirror the subsystems: assembly/ISA errors, simulation errors, memory-system
errors, and mapping errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class AssemblyError(ReproError):
    """Raised when assembly source cannot be assembled.

    Carries the source line number (1-based) when known, plus a stable
    diagnostic rule id (``asm.*``) so tooling — ``repro lint`` and CI —
    can consume assembler failures in the same structured-finding shape
    as analyzer findings (see :meth:`to_finding`).
    """

    #: default rule id; specific raise sites pass ``rule=``
    default_rule = "asm.syntax"

    def __init__(self, message, line=None, source_line=None, rule=None):
        self.line = line
        self.source_line = source_line
        self.rule = rule or self.default_rule
        self.bare_message = message
        if line is not None:
            message = "line %d: %s" % (line, message)
            if source_line is not None:
                message = "%s\n    %s" % (message, source_line.strip())
        super().__init__(message)

    def to_finding(self, source=""):
        """The error as a :class:`~repro.diagnostics.Finding`."""
        from .diagnostics import Finding, Severity, SourceSpan
        span = SourceSpan.line(self.line) if self.line is not None else None
        return Finding(
            rule=self.rule,
            severity=Severity.ERROR,
            message=self.bare_message,
            span=span,
            source=source,
            snippet=(self.source_line or "").strip(),
        )


class EncodingError(AssemblyError):
    """Raised when an instruction cannot be encoded (bad operands, range)."""

    default_rule = "asm.bad-operand"


class SimulationError(ReproError):
    """Base class for errors that occur while simulating a program."""


class IllegalInstructionError(SimulationError):
    """Raised when the CPU fetches an undecodable instruction word."""


class MemoryAccessError(SimulationError):
    """Raised on an access outside every mapped device, or misaligned."""

    def __init__(self, message, address=None):
        self.address = address
        if address is not None:
            message = "%s (address=0x%08x)" % (message, address)
        super().__init__(message)


class ExecutionLimitExceeded(SimulationError):
    """Raised when a program runs past the configured instruction budget."""


class ConfigurationError(ReproError):
    """Raised for inconsistent or impossible system configurations."""


class MappingError(ReproError):
    """Raised when a mapping algorithm cannot produce a legal placement."""


class ProfileError(ReproError):
    """Raised when profiling input is malformed or incomplete."""


class FaultInjectionError(ReproError):
    """Raised for invalid fault-injection campaign parameters."""


class CampaignError(FaultInjectionError):
    """Raised for campaign orchestration failures.

    Covers bad campaign specifications, run-directory/manifest mismatches
    on resume, and shards that exhaust their retry budget.
    """


class TraceError(ReproError):
    """Raised when a trace stream is malformed or cannot be replayed."""
