"""Monte-Carlo particle-strike injection through the real codecs.

Where the analytic AVF model *assumes* each multiplicity's outcome
(eqs. (4)–(7)), the campaign *measures* it: every trial encodes a random
data word with the struck region's actual codec, flips a sampled
clustered bit pattern, decodes with the real decoder, and classifies the
result against the golden word.  Differences from the analytic model are
real codec behaviour — e.g. a triple upset in SEC-DED is usually a
silent miscorrection but sometimes lands outside the valid-position
space and becomes a detected (DUE) event; odd >=3 upsets under parity
are detected rather than silent.

A trial is harmful only if it hits a resident block *and* lands inside
that block's ACE window; strikes on STT-RAM, on empty SPM space, or on
dead data are benign, mirroring the AVF weighting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict

from ..config import Protection
from ..ecc import ParityCodec, SecDedCodec
from ..ecc.codec import ErrorClass
from ..errors import FaultInjectionError
from .mbu import MbuDistribution


@dataclass
class CampaignResult:
    """Outcome counts of one injection campaign."""

    trials: int = 0
    benign_immune: int = 0  # strike on STT-RAM (immune cells)
    benign_empty: int = 0  # strike on unoccupied SPM space
    benign_dead: int = 0  # strike outside the block's ACE window
    none: int = 0  # hit live data but decoded clean & intact
    dre: int = 0
    due: int = 0
    sdc: int = 0
    #: per-block outcome breakdown of every *live* strike; keys are
    #: block names, values map each ErrorClass to its count
    by_block: Dict[str, Dict[ErrorClass, int]] = field(
        default_factory=dict)

    @property
    def harmful(self):
        return self.due + self.sdc

    @property
    def vulnerability(self):
        """Measured counterpart of eq. (1): P(strike -> SDC or DUE)."""
        if self.trials == 0:
            return 0.0
        return self.harmful / self.trials

    def rate(self, attribute):
        if self.trials == 0:
            return 0.0
        return getattr(self, attribute) / self.trials

    # --- composition (sharded campaigns) ---------------------------------------

    _COUNT_FIELDS = ("trials", "benign_immune", "benign_empty",
                     "benign_dead", "none", "dre", "due", "sdc")

    def merge(self, other):
        """Combine two campaign outcomes into a new result.

        Counts and the per-block breakdowns sum, so shard results from a
        partitioned campaign compose into the aggregate the equivalent
        single run would have produced.  Merging is associative and
        commutative on the counts, and ``by_block`` comes out in sorted
        key order regardless of operand order — checkpoint journals and
        reports are byte-stable no matter which shard finished first.
        """
        if not isinstance(other, CampaignResult):
            raise FaultInjectionError(
                "can only merge CampaignResult, not %r" % type(other))
        merged = CampaignResult(**{
            name: getattr(self, name) + getattr(other, name)
            for name in self._COUNT_FIELDS})
        for block in sorted(set(self.by_block) | set(other.by_block)):
            counts = {klass: 0 for klass in ErrorClass}
            for source in (self, other):
                for klass, count in source.by_block.get(block,
                                                        {}).items():
                    counts[klass] += count
            merged.by_block[block] = counts
        return merged

    def __add__(self, other):
        if isinstance(other, CampaignResult):
            return self.merge(other)
        return NotImplemented

    def __radd__(self, other):
        if other == 0:  # so sum(results) works
            return self.merge(CampaignResult())
        return NotImplemented

    # --- serialization (campaign checkpoints) ----------------------------------

    def to_dict(self):
        """Plain-JSON form: enum keys become their string values.

        Blocks are emitted in sorted name order so serialized results —
        checkpoint journals, golden corpus entries, digests — are
        byte-stable regardless of strike or merge order.
        """
        payload = {name: getattr(self, name) for name in self._COUNT_FIELDS}
        payload["by_block"] = {
            block: {klass.value: count
                    for klass, count in self.by_block[block].items()}
            for block in sorted(self.by_block)}
        return payload

    @classmethod
    def from_dict(cls, payload):
        """Inverse of :meth:`to_dict` (blocks restored in sorted order)."""
        result = cls(**{name: int(payload.get(name, 0))
                        for name in cls._COUNT_FIELDS})
        by_block = payload.get("by_block", {})
        for block in sorted(by_block):
            result.by_block[block] = {
                klass: int(by_block[block].get(klass.value, 0))
                for klass in ErrorClass}
        return result


@dataclass(frozen=True)
class Target:
    """One resident surface element as seen by the injector.

    Either a mapped block (the classic ``avf_entries`` reading) or a
    whole SPM region with a precomputed utilization (the region-surface
    reading of Fig. 5) — the injector only needs the four fields.
    """

    name: str
    protection: Protection
    size: int
    ace_fraction: float


_Target = Target  # backwards-compatible alias


class InjectionCampaign:
    """Samples strikes over an SPM occupied by a mapping scenario."""

    def __init__(self, entries, total_spm_bytes, total_cycles,
                 mbu=None, seed=0xF7F7):
        """``entries`` is an iterable of ``(block_stats, protection)``,
        identical to :func:`repro.faults.avf.vulnerability_of_placement`.
        """
        targets = []
        for stats, protection in entries:
            ace = (min(1.0, stats.ace_cycles / total_cycles)
                   if total_cycles > 0 else 0.0)
            targets.append(Target(
                name=stats.name,
                protection=protection,
                size=stats.size,
                ace_fraction=ace,
            ))
        self._init_from_targets(targets, total_spm_bytes, mbu, seed)

    @classmethod
    def from_targets(cls, targets, total_spm_bytes, mbu=None, seed=0xF7F7):
        """Build a campaign from precomputed :class:`Target` surfaces.

        Used by :mod:`repro.campaign` to rebuild the injector inside
        worker processes, and to sample the region-surface reading of
        Fig. 5 (whole regions with precomputed utilizations) instead of
        the block-level ``avf_entries`` reading.
        """
        campaign = cls.__new__(cls)
        campaign._init_from_targets(
            [Target(t.name, t.protection, t.size, t.ace_fraction)
             for t in targets],
            total_spm_bytes, mbu, seed)
        return campaign

    def _init_from_targets(self, targets, total_spm_bytes, mbu, seed):
        if total_spm_bytes <= 0:
            raise FaultInjectionError("total_spm_bytes must be positive")
        occupied = sum(target.size for target in targets)
        if occupied > total_spm_bytes:
            raise FaultInjectionError(
                "resident blocks (%d B) exceed the SPM surface (%d B)"
                % (occupied, total_spm_bytes))
        self.targets = targets
        self.total_spm_bytes = total_spm_bytes
        self.mbu = mbu or MbuDistribution.for_node(40)
        self.rng = random.Random(seed)
        self._parity = ParityCodec(32)
        self._secded = SecDedCodec(64)

    # --- one trial -------------------------------------------------------------

    def _pick_target(self):
        point = self.rng.randrange(self.total_spm_bytes)
        cursor = 0
        for target in self.targets:
            cursor += target.size
            if point < cursor:
                return target
        return None  # empty space

    def _strike_word(self, protection):
        """Encode a random word, strike it, decode, classify."""
        if protection is Protection.PARITY:
            codec = self._parity
            data = self.rng.getrandbits(32)
        elif protection is Protection.SECDED:
            codec = self._secded
            data = self.rng.getrandbits(64)
        elif protection is Protection.NONE:
            # Unprotected SRAM: any flip on live data is silent corruption.
            return ErrorClass.SDC
        else:
            raise FaultInjectionError(
                "cannot strike protection %r" % protection)
        codeword = codec.encode(data)
        pattern = self.mbu.sample_pattern(self.rng, codec.codeword_bits)
        return codec.classify(data, pattern.apply(codeword))

    def run(self, trials=100_000):
        """Run the campaign; returns a :class:`CampaignResult`."""
        result = CampaignResult()
        for _ in range(trials):
            result.trials += 1
            target = self._pick_target()
            if target is None:
                result.benign_empty += 1
                continue
            if target.protection is Protection.IMMUNE:
                result.benign_immune += 1
                continue
            if self.rng.random() >= target.ace_fraction:
                result.benign_dead += 1
                continue
            outcome = self._strike_word(target.protection)
            block_counts = result.by_block.setdefault(
                target.name, {klass: 0 for klass in ErrorClass})
            block_counts[outcome] += 1
            if outcome is ErrorClass.SDC:
                result.sdc += 1
            elif outcome is ErrorClass.DUE:
                result.due += 1
            elif outcome is ErrorClass.DRE:
                result.dre += 1
            else:
                result.none += 1
        return result
