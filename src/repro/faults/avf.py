"""Architectural Vulnerability Factor model — equations (1)–(7).

The paper computes SPM vulnerability as::

    Vulnerability = SDC_AVF + DUE_AVF                            (1)
    SDC_AVF = sum_i ACE_i * SDC_probability(region_i)            (2)
    DUE_AVF = sum_i ACE_i * DUE_probability(region_i)            (3)

with the per-region probabilities driven by the strike multiplicity
distribution::

    DUE(parity)  = P(1 bit)                                      (4)
    DUE(SEC-DED) = P(2 bits)                                     (5)
    SDC(parity)  = P(>= 2 bits)                                  (6)
    SDC(SEC-DED) = P(>= 3 bits)                                  (7)

STT-RAM regions contribute nothing (immune).  Each block's weight is its
ACE-time fraction multiplied by its share of the SPM surface (a strike
lands uniformly over the array area), which also reproduces the paper's
observation that the uniform all-SEC-DED baseline is nearly workload-
independent while FTSPM's vulnerability tracks how little of its surface
is SRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import Protection
from ..errors import FaultInjectionError
from .mbu import MbuDistribution


@dataclass(frozen=True)
class RegionErrorProbabilities:
    """Per-strike outcome probabilities for one protection scheme."""

    protection: Protection
    sdc: float
    due: float
    dre: float

    @property
    def harmful(self):
        """Probability a strike on live data harms the run (eq. 1 terms)."""
        return self.sdc + self.due


def region_error_probabilities(protection, mbu=None):
    """Equations (4)–(7) for one protection scheme."""
    mbu = mbu or MbuDistribution.for_node(40)
    if protection is Protection.IMMUNE:
        return RegionErrorProbabilities(protection, 0.0, 0.0, 0.0)
    if protection is Protection.PARITY:
        return RegionErrorProbabilities(
            protection,
            sdc=mbu.p_at_least(2),
            due=mbu.p_exactly(1),
            dre=0.0,
        )
    if protection is Protection.SECDED:
        return RegionErrorProbabilities(
            protection,
            sdc=mbu.p_at_least(3),
            due=mbu.p_exactly(2),
            dre=mbu.p_exactly(1),
        )
    if protection is Protection.NONE:
        return RegionErrorProbabilities(protection, sdc=1.0, due=0.0, dre=0.0)
    raise FaultInjectionError("unknown protection %r" % protection)


@dataclass
class BlockVulnerability:
    """One block's contribution to the scenario vulnerability."""

    name: str
    protection: Protection
    area_fraction: float
    ace_fraction: float
    sdc: float
    due: float

    @property
    def total(self):
        return self.sdc + self.due


@dataclass
class VulnerabilityBreakdown:
    """Equation (1) plus its per-block decomposition."""

    sdc_avf: float = 0.0
    due_avf: float = 0.0
    blocks: list = field(default_factory=list)

    @property
    def vulnerability(self):
        return self.sdc_avf + self.due_avf

    @property
    def reliability(self):
        """The paper's Section IV "reliability" scalar (86% vs 62%)."""
        return 1.0 - self.vulnerability


def region_surface_vulnerability(plan, profile, mbu=None, uniform=False,
                                 spm_name=None, ace_floor=0.3):
    """Region-surface reading of equations (1)–(3) — the paper's Fig. 5.

    A strike lands uniformly over the data-SPM surface; each *region*
    contributes ``area_share x utilization x harmful_probability`` where
    utilization is the ACE-time-weighted fraction of the region holding
    live data.  With ``uniform=True`` every region is treated as fully
    utilized — the paper's reading of the homogeneous SEC-DED baseline,
    which makes its vulnerability the workload-independent constant
    ``P(2 bits) + P(>= 3 bits)`` (~0.38 at 40 nm) and its Section IV
    "reliability" the quoted 62%.

    ``spm_name`` restricts the surface (default: the data SPM, matching
    the paper's D-SPM focus; the instruction SPM is all-STT-RAM in FTSPM
    and is reported separately when desired).
    """
    mbu = mbu or MbuDistribution.for_node(40)
    spm_name = spm_name or "D-SPM"
    slots = [slot for slot in plan.slots.values()
             if slot.spm_name == spm_name]
    total_area = sum(slot.size for slot in slots)
    if total_area <= 0:
        raise FaultInjectionError("SPM %r has no surface" % spm_name)
    breakdown = VulnerabilityBreakdown()
    total_cycles = profile.total_cycles
    for slot in slots:
        probabilities = region_error_probabilities(slot.protection, mbu)
        if uniform:
            utilization = 1.0
        else:
            # Block-granular ACE underestimates word-level liveness (a
            # single live word keeps its whole access gap vulnerable), so
            # occupied bytes never count below ``ace_floor``.
            live = 0.0
            for assignment in plan.blocks_in_region(slot.name):
                stats = profile.get(assignment.block_name)
                ace = (min(1.0, stats.ace_cycles / total_cycles)
                       if total_cycles > 0 else 0.0)
                live += stats.size * max(ace, ace_floor)
            utilization = min(1.0, live / slot.size)
        weight = (slot.size / total_area) * utilization
        block = BlockVulnerability(
            name=slot.name,
            protection=slot.protection,
            area_fraction=slot.size / total_area,
            ace_fraction=utilization,
            sdc=weight * probabilities.sdc,
            due=weight * probabilities.due,
        )
        breakdown.sdc_avf += block.sdc
        breakdown.due_avf += block.due
        breakdown.blocks.append(block)
    return breakdown


def vulnerability_of_placement(entries, total_spm_bytes, total_cycles,
                               mbu=None, ace_weighted=True):
    """Evaluate equations (1)–(3) for a mapping scenario.

    ``entries`` is an iterable of ``(block_stats, protection)`` pairs for
    every block resident in the SPM; ``total_spm_bytes`` is the full SPM
    surface a strike can hit.  With ``ace_weighted=False`` every resident
    block is treated as vulnerable for the whole run (the conservative
    uniform-surface reading under which the paper's baseline is constant).
    """
    if total_spm_bytes <= 0:
        raise FaultInjectionError("total_spm_bytes must be positive")
    mbu = mbu or MbuDistribution.for_node(40)
    breakdown = VulnerabilityBreakdown()
    for stats, protection in entries:
        probabilities = region_error_probabilities(protection, mbu)
        area_fraction = min(1.0, stats.size / total_spm_bytes)
        if ace_weighted and total_cycles > 0:
            ace_fraction = min(1.0, stats.ace_cycles / total_cycles)
        else:
            ace_fraction = 1.0
        weight = area_fraction * ace_fraction
        block = BlockVulnerability(
            name=stats.name,
            protection=protection,
            area_fraction=area_fraction,
            ace_fraction=ace_fraction,
            sdc=weight * probabilities.sdc,
            due=weight * probabilities.due,
        )
        breakdown.sdc_avf += block.sdc
        breakdown.due_avf += block.due
        breakdown.blocks.append(block)
    return breakdown
