"""Temporal error accumulation and memory scrubbing.

The single-strike model (equations (1)–(7)) assumes each particle strike
is adjudicated in isolation.  Over long missions, *independent* strikes
accumulate: two single-bit upsets landing in the same SEC-DED word
between consecutive reads become an uncorrectable double error, and
three become a potential silent miscorrection.  The standard defence is
**scrubbing** — periodically reading, correcting, and writing back every
word so accumulated singles are cleaned before they pair up.

:class:`AccumulationCampaign` simulates this per-word process with the
real codecs: strikes arrive as a Poisson process per word, each scrub
epoch decodes the accumulated word (correcting what the codec can), and
end-of-epoch outcomes are classified against the golden data.  The
scrubbing ablation sweeps the epoch count to show vulnerability falling
toward the single-strike floor — and the energy cost of the scrub reads
that buys it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..config import Protection
from ..ecc import ParityCodec, SecDedCodec
from ..ecc.codec import DecodeOutcome, ErrorClass
from ..errors import FaultInjectionError
from .mbu import MbuDistribution

_SEVERITY = {
    ErrorClass.NONE: 0,
    ErrorClass.DRE: 1,
    ErrorClass.DUE: 2,
    ErrorClass.SDC: 3,
}


@dataclass
class AccumulationResult:
    """Outcome of one accumulation campaign."""

    words: int = 0
    epochs: int = 0
    strikes: int = 0
    none: int = 0  # words that finished the mission clean
    dre: int = 0  # worst outcome was a corrected error
    due: int = 0
    sdc: int = 0
    scrub_reads: int = 0
    scrub_writebacks: int = 0

    @property
    def harmful_fraction(self):
        if self.words == 0:
            return 0.0
        return (self.due + self.sdc) / self.words

    @property
    def sdc_fraction(self):
        if self.words == 0:
            return 0.0
        return self.sdc / self.words


class AccumulationCampaign:
    """Per-word multi-strike simulation with periodic scrubbing.

    ``strike_rate`` is the expected number of strikes per word over the
    whole mission; ``scrub_epochs`` divides the mission into that many
    scrub intervals (1 = no scrubbing beyond the final readout).
    """

    def __init__(self, protection=Protection.SECDED, strike_rate=0.5,
                 scrub_epochs=1, mbu=None, seed=0x5C12B):
        if strike_rate < 0:
            raise FaultInjectionError("strike_rate must be non-negative")
        if scrub_epochs < 1:
            raise FaultInjectionError("scrub_epochs must be >= 1")
        if protection is Protection.PARITY:
            self.codec = ParityCodec(32)
        elif protection is Protection.SECDED:
            self.codec = SecDedCodec(64)
        else:
            raise FaultInjectionError(
                "accumulation campaigns need a correcting/detecting "
                "scheme, not %r" % protection)
        self.protection = protection
        self.strike_rate = strike_rate
        self.scrub_epochs = scrub_epochs
        self.mbu = mbu or MbuDistribution.for_node(40)
        self.rng = random.Random(seed)

    def _poisson(self, mean):
        """Knuth's algorithm; means here are tiny (<< 10)."""
        limit = math.exp(-mean)
        count = 0
        product = self.rng.random()
        while product > limit:
            count += 1
            product *= self.rng.random()
        return count

    def _simulate_word(self, result):
        codec = self.codec
        data = self.rng.getrandbits(codec.data_bits)
        codeword = codec.encode(data)
        worst = ErrorClass.NONE
        per_epoch_rate = self.strike_rate / self.scrub_epochs
        for _ in range(self.scrub_epochs):
            for _ in range(self._poisson(per_epoch_rate)):
                result.strikes += 1
                pattern = self.mbu.sample_pattern(
                    self.rng, codec.codeword_bits)
                codeword = pattern.apply(codeword)
            # scrub: read, classify, correct what the codec can
            result.scrub_reads += 1
            outcome = codec.classify(data, codeword)
            if _SEVERITY[outcome] > _SEVERITY[worst]:
                worst = outcome
            decoded = codec.decode(codeword)
            if decoded.outcome is DecodeOutcome.CORRECTED:
                # write back the codec's corrected view (which, after a
                # miscorrection, can itself be wrong data re-encoded)
                codeword = codec.encode(decoded.data)
                result.scrub_writebacks += 1
            elif decoded.outcome is DecodeOutcome.DETECTED_UNCORRECTABLE:
                # a real system would signal and reload; model the word
                # as restored from the golden backing copy
                codeword = codec.encode(data)
                result.scrub_writebacks += 1
        return worst

    def run(self, words=20_000):
        """Simulate ``words`` independent words; returns the result."""
        result = AccumulationResult(words=words, epochs=self.scrub_epochs)
        for _ in range(words):
            worst = self._simulate_word(result)
            if worst is ErrorClass.SDC:
                result.sdc += 1
            elif worst is ErrorClass.DUE:
                result.due += 1
            elif worst is ErrorClass.DRE:
                result.dre += 1
            else:
                result.none += 1
        return result
