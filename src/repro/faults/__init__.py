"""Soft-error model: MBU statistics, AVF equations, and fault injection.

Implements both halves of the paper's reliability methodology:

* the **analytic AVF model** (equations (1)–(7)): per-region SDC/DUE
  probabilities from the multiplicity distribution of particle-strike
  bit flips (Dixit & Wood's 62/25/6/7 % at 40 nm), weighted by each
  block's ACE time and area share,
* a **Monte-Carlo injection campaign** that samples strikes, flips real
  bits in real codewords, runs the actual parity / SEC-DED decoders from
  :mod:`repro.ecc`, and classifies outcomes — cross-checking the
  analytic numbers with measured codec behaviour.
"""

from .mbu import MbuDistribution, StrikePattern
from .avf import (
    RegionErrorProbabilities,
    VulnerabilityBreakdown,
    region_error_probabilities,
    region_surface_vulnerability,
    vulnerability_of_placement,
)
from .injector import CampaignResult, InjectionCampaign, Target
from .scrubbing import AccumulationCampaign, AccumulationResult

__all__ = [
    "MbuDistribution",
    "StrikePattern",
    "RegionErrorProbabilities",
    "VulnerabilityBreakdown",
    "region_error_probabilities",
    "region_surface_vulnerability",
    "vulnerability_of_placement",
    "CampaignResult",
    "InjectionCampaign",
    "Target",
    "AccumulationCampaign",
    "AccumulationResult",
]
