"""Multiple-bit-upset statistics for particle strikes.

The paper cites Dixit & Wood (IRPS'11): at the 40 nm node, a particle
strike flips one bit with probability 62%, two bits 25%, three bits 6%,
and more than three 7%.  Strikes are spatially clustered — the flipped
bits of a multi-bit upset land in neighbouring cells — which is exactly
why word-interleaved ECC struggles; we model the cluster as a contiguous
window around a random start bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import FaultInjectionError
from ..tech.params import node_params


@dataclass(frozen=True)
class StrikePattern:
    """One sampled strike: which bit positions of a codeword flip."""

    multiplicity: int
    bit_positions: tuple

    def apply(self, codeword):
        for position in self.bit_positions:
            codeword ^= 1 << position
        return codeword


class MbuDistribution:
    """Multiplicity distribution of bit flips per particle strike."""

    def __init__(self, probabilities, max_multiplicity=6):
        if len(probabilities) != 4:
            raise FaultInjectionError(
                "need 4 probabilities: P(1), P(2), P(3), P(>3)")
        total = sum(probabilities)
        if abs(total - 1.0) > 1e-9:
            raise FaultInjectionError(
                "multiplicity probabilities must sum to 1 (got %g)" % total)
        if any(p < 0 for p in probabilities):
            raise FaultInjectionError("probabilities must be non-negative")
        self.p1, self.p2, self.p3, self.p_more = probabilities
        self.max_multiplicity = max_multiplicity

    @classmethod
    def for_node(cls, node_nm=40):
        """The distribution the paper uses for its node (40 nm default)."""
        return cls(node_params(node_nm).mbu_distribution)

    # --- aggregate probabilities used by the AVF equations ------------------

    def p_exactly(self, bits):
        if bits == 1:
            return self.p1
        if bits == 2:
            return self.p2
        if bits == 3:
            return self.p3
        raise FaultInjectionError(
            "only multiplicities 1..3 have exact probabilities")

    def p_at_least(self, bits):
        """P(multiplicity >= bits) for the thresholds in eqs. (4)-(7)."""
        if bits <= 1:
            return 1.0
        if bits == 2:
            return self.p2 + self.p3 + self.p_more
        if bits == 3:
            return self.p3 + self.p_more
        if bits == 4:
            return self.p_more
        raise FaultInjectionError("threshold must be 1..4")

    # --- sampling ----------------------------------------------------------------

    def sample_multiplicity(self, rng):
        value = rng.random()
        if value < self.p1:
            return 1
        value -= self.p1
        if value < self.p2:
            return 2
        value -= self.p2
        if value < self.p3:
            return 3
        # ">3": geometric tail over 4..max_multiplicity
        multiplicity = 4
        while (multiplicity < self.max_multiplicity
               and rng.random() < 0.4):
            multiplicity += 1
        return multiplicity

    def sample_pattern(self, rng, codeword_bits):
        """Sample a clustered strike over a ``codeword_bits``-wide word."""
        multiplicity = self.sample_multiplicity(rng)
        multiplicity = min(multiplicity, codeword_bits)
        window = min(codeword_bits, multiplicity + 2)
        start = rng.randrange(codeword_bits - window + 1)
        positions = rng.sample(range(start, start + window), multiplicity)
        return StrikePattern(multiplicity, tuple(sorted(positions)))


def make_rng(seed):
    """A deterministic RNG for injection campaigns."""
    return random.Random(seed)
