"""ACE-window tracking as an event-bus subscriber.

The AVF model (equations (1)–(3)) weighs each block by its **ACE time**:
a particle strike matters only if it lands between a write (or an
earlier read) and the *next read* of the block — the read-gap
accumulation.  Historically this logic lived inside the profiler's
touch bookkeeping; :class:`AceTracker` extracts it as a standalone
subscriber on the :class:`~repro.events.EventBus`, so the fault model
can observe a run directly, and the profiler delegates to the same
implementation (one definition of ACE time for both consumers).
"""

from __future__ import annotations

from ..events import AccessEvent, EventSubscriber


class AceTracker(EventSubscriber):
    """Accumulates per-block ACE cycles from touch timestamps.

    Two ways to drive it:

    * as a bus subscriber — construct with ``resolver``, a callable
      mapping an :class:`~repro.events.AccessEvent` to a block name (or
      None to ignore), and subscribe it to a machine's bus;
    * programmatically — call :meth:`record` with the block name, the
      current cycle, and whether the touch is a write (the profiler's
      path, which already knows the block).

    A read ends the open vulnerability window and banks the gap since
    the previous touch; a write (re)opens the window without banking.
    At end-of-simulation, :meth:`finish` closes windows still opened by
    a write: data written and never read back survives in memory until
    halt, so a strike anywhere in that tail interval corrupts
    architecturally visible state.  Without the closure the last write
    before halt would be silently dropped from :meth:`ace_of`.
    """

    def __init__(self, resolver=None):
        self.resolver = resolver
        self.ace_cycles = {}  # block name -> accumulated ACE cycles
        self._last_touch = {}  # block name -> cycle of the latest touch
        self._open_write = {}  # block name -> last touch was a write

    def on_access(self, event: AccessEvent):
        if self.resolver is None:
            return
        name = self.resolver(event)
        if name is not None:
            self.record(name, event.at_cycle, event.is_write)

    def record(self, name, now, is_write):
        """Account one touch of ``name`` at cycle ``now``."""
        last = self._last_touch.get(name)
        if not is_write and last is not None:
            self.ace_cycles[name] = (
                self.ace_cycles.get(name, 0) + now - last)
        self._last_touch[name] = now
        self._open_write[name] = is_write

    def finish(self, now):
        """Close write-opened windows at end-of-simulation cycle ``now``.

        Idempotent: closed windows are marked so a second ``finish``
        (or a later read replay) does not double-count the tail.
        """
        for name, was_write in self._open_write.items():
            if not was_write:
                continue
            last = self._last_touch.get(name)
            if last is not None and now > last:
                self.ace_cycles[name] = (
                    self.ace_cycles.get(name, 0) + now - last)
                self._last_touch[name] = now
            self._open_write[name] = False

    def ace_of(self, name):
        return self.ace_cycles.get(name, 0)

    def ace_fraction(self, name, total_cycles):
        """The block's ACE share of the run, clamped to [0, 1]."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.ace_cycles.get(name, 0) / total_cycles)
