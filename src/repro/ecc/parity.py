"""Even-parity codec: one check bit per data word.

Detects every odd-multiplicity upset; even-multiplicity upsets pass
silently (SDC).  Parity cannot correct, so any detection is a DUE —
matching equations (4) and (6) of the paper:
``DUE = P(1 bit)``, ``SDC = P(>= 2 bits)`` (the odd >= 3 cases are DUEs
too, but the paper's first-order model charges all multi-bit upsets to
SDC; the injector measures the exact behaviour).
"""

from __future__ import annotations

from ..errors import FaultInjectionError
from .codec import Codec, DecodeOutcome, DecodeResult


def _parity(value):
    value ^= value >> 32
    value ^= value >> 16
    value ^= value >> 8
    value ^= value >> 4
    value ^= value >> 2
    value ^= value >> 1
    return value & 1


class ParityCodec(Codec):
    """Even parity over a ``data_bits``-wide word (default 32)."""

    name = "parity"
    check_bits = 1

    def __init__(self, data_bits=32):
        if data_bits <= 0:
            raise FaultInjectionError("data_bits must be positive")
        self.data_bits = data_bits
        self._data_mask = (1 << data_bits) - 1

    def encode(self, data):
        data &= self._data_mask
        return data | (_parity(data) << self.data_bits)

    def decode(self, codeword):
        data = codeword & self._data_mask
        stored = (codeword >> self.data_bits) & 1
        if _parity(data) == stored:
            return DecodeResult(data=data, outcome=DecodeOutcome.CLEAN)
        return DecodeResult(
            data=data, outcome=DecodeOutcome.DETECTED_UNCORRECTABLE)
