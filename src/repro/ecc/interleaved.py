"""Bit-interleaved ECC: the classic MBU countermeasure, as a comparator.

The paper argues SEC-DED is insufficient against MBUs; the standard
industrial answer is *physical bit interleaving*: adjacent cells belong
to different logical codewords, so a spatially clustered m-bit upset
lands at most ``ceil(m / ways)`` flips in any one codeword.  This module
implements a real interleaved wrapper over any base codec, used by the
interleaving ablation to quantify how close an interleaved SEC-DED SRAM
comes to FTSPM's reliability — and at what energy cost (wider physical
rows burn proportionally more access energy).

Physical layout: physical bit ``i`` is logical bit ``i // ways`` of
codeword ``i % ways``.
"""

from __future__ import annotations

from ..errors import FaultInjectionError
from .codec import ErrorClass

#: severity ordering for aggregating per-way outcomes
_SEVERITY = {
    ErrorClass.NONE: 0,
    ErrorClass.DRE: 1,
    ErrorClass.DUE: 2,
    ErrorClass.SDC: 3,
}


class InterleavedCodec:
    """``ways`` codewords of a base codec, physically bit-interleaved."""

    def __init__(self, base_codec, ways=4):
        if ways < 1:
            raise FaultInjectionError("ways must be >= 1")
        self.base = base_codec
        self.ways = ways

    @property
    def codeword_bits(self):
        """Width of the interleaved physical row."""
        return self.base.codeword_bits * self.ways

    @property
    def data_bits(self):
        return self.base.data_bits * self.ways

    # --- layout ---------------------------------------------------------------

    def interleave(self, codewords):
        """Pack ``ways`` logical codewords into one physical row."""
        if len(codewords) != self.ways:
            raise FaultInjectionError(
                "need exactly %d codewords" % self.ways)
        physical = 0
        for logical_bit in range(self.base.codeword_bits):
            for way, codeword in enumerate(codewords):
                if (codeword >> logical_bit) & 1:
                    physical |= 1 << (logical_bit * self.ways + way)
        return physical

    def deinterleave(self, physical):
        """Unpack a physical row into ``ways`` logical codewords."""
        codewords = [0] * self.ways
        for logical_bit in range(self.base.codeword_bits):
            for way in range(self.ways):
                if (physical >> (logical_bit * self.ways + way)) & 1:
                    codewords[way] |= 1 << logical_bit
        return codewords

    # --- codec API over groups ----------------------------------------------------

    def encode_group(self, data_words):
        """Encode ``ways`` data words into one physical row."""
        if len(data_words) != self.ways:
            raise FaultInjectionError(
                "need exactly %d data words" % self.ways)
        return self.interleave(
            [self.base.encode(word) for word in data_words])

    def decode_group(self, physical):
        """Decode a physical row into ``ways`` DecodeResults."""
        return [self.base.decode(codeword)
                for codeword in self.deinterleave(physical)]

    def classify_group(self, golden_words, corrupted_physical):
        """Worst-case classification across the group's codewords."""
        if len(golden_words) != self.ways:
            raise FaultInjectionError(
                "need exactly %d golden words" % self.ways)
        worst = ErrorClass.NONE
        for golden, codeword in zip(golden_words,
                                    self.deinterleave(corrupted_physical)):
            outcome = self.base.classify(golden, codeword)
            if _SEVERITY[outcome] > _SEVERITY[worst]:
                worst = outcome
        return worst

    # --- analytic helper -------------------------------------------------------------

    def max_flips_per_codeword(self, cluster_width):
        """Worst-case flips one codeword sees from a contiguous cluster."""
        if cluster_width <= 0:
            return 0
        return -(-cluster_width // self.ways)  # ceil division

    def energy_factor(self):
        """Relative per-access dynamic-energy cost of the wide row.

        Interleaving activates a row ``ways`` codewords wide; with column
        muxing most of the extra energy is bitline precharge, modelled as
        ~15% per doubling (the figure NVSim-style models attribute to
        wider physical rows at equal capacity).
        """
        factor = 1.0
        ways = self.ways
        while ways > 1:
            factor *= 1.15
            ways //= 2
        return factor
