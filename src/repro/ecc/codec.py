"""Codec interface and decode-outcome taxonomy.

The outcome names follow the paper's error taxonomy (Section IV):

* **DRE** — detected and recovered (codec corrected the word),
* **DUE** — detected but unrecoverable,
* **SDC** — silent data corruption (codec believed the word was fine, or
  "corrected" it to the wrong value).

A codec's :meth:`Codec.decode` reports only what the hardware can know
(clean / corrected / detected-uncorrectable).  The true classification
needs the golden data, so :meth:`Codec.classify` compares against it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DecodeOutcome(enum.Enum):
    """What the decoder hardware observed/did."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    DETECTED_UNCORRECTABLE = "detected-uncorrectable"


class ErrorClass(enum.Enum):
    """Ground-truth classification of a decode against the golden data."""

    NONE = "none"  # data intact, decoder silent: no error
    DRE = "dre"  # detected and recovered
    DUE = "due"  # detected, unrecoverable
    SDC = "sdc"  # silent data corruption


@dataclass(frozen=True)
class DecodeResult:
    """Decoder output: recovered data word plus the observed outcome."""

    data: int
    outcome: DecodeOutcome


class Codec:
    """Abstract block codec over fixed-size data words."""

    #: number of data bits per codeword
    data_bits = 0
    #: number of check bits per codeword
    check_bits = 0
    name = "codec"

    @property
    def codeword_bits(self):
        return self.data_bits + self.check_bits

    @property
    def storage_overhead(self):
        """Fraction of extra storage (check bits / data bits)."""
        return self.check_bits / self.data_bits

    def encode(self, data):
        """Encode a data word into a codeword (both plain ints)."""
        raise NotImplementedError

    def decode(self, codeword):
        """Decode a codeword; returns a :class:`DecodeResult`."""
        raise NotImplementedError

    def classify(self, golden_data, corrupted_codeword):
        """Ground-truth classification of decoding a corrupted word."""
        result = self.decode(corrupted_codeword)
        if result.outcome is DecodeOutcome.DETECTED_UNCORRECTABLE:
            return ErrorClass.DUE
        if result.data == golden_data:
            if result.outcome is DecodeOutcome.CORRECTED:
                return ErrorClass.DRE
            return ErrorClass.NONE
        # Decoder delivered wrong data while claiming clean or corrected.
        return ErrorClass.SDC
