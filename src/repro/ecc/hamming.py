"""Hamming SEC-DED codec — the (72,64) code of the paper's ECC region.

Shortened Hamming code with check bits at power-of-two positions 1..64
plus an overall parity bit, giving single-error correction and
double-error detection.  Behaviour under multi-bit upsets is *computed*,
not assumed: a triple flip whose syndrome lands on a valid position gets
"corrected" into the wrong word — the silent-data-corruption channel that
makes SEC-DED insufficient against MBUs (the paper's core motivation).

Bit layout of a codeword integer: bit 0 is the overall parity bit; bits
1..71 are Hamming positions 1..71 (check bits at positions 1, 2, 4, 8,
16, 32, 64; data bits at the remaining 64 positions in ascending order).
"""

from __future__ import annotations

from ..errors import FaultInjectionError
from .codec import Codec, DecodeOutcome, DecodeResult


class SecDedCodec(Codec):
    """Hamming SEC-DED over ``data_bits`` data bits (default 64)."""

    name = "sec-ded"

    def __init__(self, data_bits=64):
        if data_bits <= 0:
            raise FaultInjectionError("data_bits must be positive")
        self.data_bits = data_bits
        hamming_checks = 1
        while (1 << hamming_checks) < data_bits + hamming_checks + 1:
            hamming_checks += 1
        self._hamming_checks = hamming_checks
        self.check_bits = hamming_checks + 1  # + overall parity
        self._total_positions = data_bits + hamming_checks  # positions 1..N
        self._check_positions = [1 << i for i in range(hamming_checks)]
        self._data_positions = [
            position for position in range(1, self._total_positions + 1)
            if position & (position - 1)  # not a power of two
        ]
        if len(self._data_positions) != data_bits:
            raise FaultInjectionError(
                "internal layout error: %d data positions for %d data bits"
                % (len(self._data_positions), data_bits))

    # --- helpers -----------------------------------------------------------

    def _position_xor(self, codeword):
        """XOR of the position indices of every set bit (the syndrome)."""
        syndrome = 0
        bits = codeword >> 1  # strip the overall parity bit
        position = 1
        while bits:
            if bits & 1:
                syndrome ^= position
            bits >>= 1
            position += 1
        return syndrome

    def _overall_parity(self, codeword):
        return bin(codeword).count("1") & 1

    # --- public API -----------------------------------------------------------

    def encode(self, data):
        data &= (1 << self.data_bits) - 1
        codeword = 0
        for index, position in enumerate(self._data_positions):
            if (data >> index) & 1:
                codeword |= 1 << position
        syndrome = self._position_xor(codeword)
        for check_position in self._check_positions:
            if syndrome & check_position:
                codeword |= 1 << check_position
        # Now the position-XOR of the full word is zero; add overall parity.
        if self._overall_parity(codeword):
            codeword |= 1
        return codeword

    def _extract(self, codeword):
        data = 0
        for index, position in enumerate(self._data_positions):
            if (codeword >> position) & 1:
                data |= 1 << index
        return data

    def decode(self, codeword):
        syndrome = self._position_xor(codeword)
        parity_error = self._overall_parity(codeword) == 1
        if syndrome == 0 and not parity_error:
            return DecodeResult(data=self._extract(codeword),
                                outcome=DecodeOutcome.CLEAN)
        if syndrome == 0 and parity_error:
            # Only the overall parity bit flipped; data is intact.
            return DecodeResult(data=self._extract(codeword),
                                outcome=DecodeOutcome.CORRECTED)
        if parity_error:
            # Odd number of flips; trust the syndrome as a position.
            if syndrome <= self._total_positions:
                corrected = codeword ^ (1 << syndrome)
                return DecodeResult(data=self._extract(corrected),
                                    outcome=DecodeOutcome.CORRECTED)
            return DecodeResult(data=self._extract(codeword),
                                outcome=DecodeOutcome.DETECTED_UNCORRECTABLE)
        # Non-zero syndrome with even parity: double (even) error.
        return DecodeResult(data=self._extract(codeword),
                            outcome=DecodeOutcome.DETECTED_UNCORRECTABLE)
