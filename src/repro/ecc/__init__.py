"""Error-detection/correction codecs used by the SRAM SPM regions.

Real, bit-accurate implementations (not behavioural stubs):

* :class:`ParityCodec` — one even-parity bit per 32-bit word; detects any
  odd number of bit flips, silently misses even-multiplicity flips.
* :class:`SecDedCodec` — Hamming(72,64) single-error-correct /
  double-error-detect; triple and higher upsets can alias into silent
  miscorrections, which is exactly the MBU weakness the paper exploits
  in its vulnerability argument.

The fault-injection campaign (:mod:`repro.faults.injector`) runs stored
words through these codecs and classifies outcomes as DRE / DUE / SDC by
comparison with the golden data.
"""

from .codec import Codec, DecodeOutcome, DecodeResult, ErrorClass
from .parity import ParityCodec
from .hamming import SecDedCodec
from .interleaved import InterleavedCodec

__all__ = [
    "Codec",
    "DecodeOutcome",
    "DecodeResult",
    "ErrorClass",
    "ParityCodec",
    "SecDedCodec",
    "InterleavedCodec",
]
