"""The Mapping Determiner Algorithm (Algorithm 1 of the paper).

The off-line phase, in the paper's six steps:

1. Map code blocks to the (fully STT-RAM) instruction SPM while they fit;
   map every data block that fits into the STT-RAM region of the data SPM.
2. Sort the STT-resident data blocks by *susceptibility* — the number of
   block references multiplied by its life-time.
3. While the scenario's performance overhead exceeds its threshold,
   evict the least susceptible block from STT-RAM.
4. While the scenario's energy overhead exceeds its threshold, evict the
   least susceptible block from STT-RAM.
5. Evict every STT-resident block whose write count exceeds the write-
   cycles threshold, regardless of susceptibility (endurance guard).
6. Place the evicted blocks: blocks at least as susceptible as the
   evictee average go to the SEC-DED region, the rest to the parity
   region, subject to capacity; anything that fits nowhere stays
   unmapped (served by the cache).

During the eviction loops an evicted block is priced at the parity-SRAM
extreme point (its eventual SRAM home) so the loops converge toward the
intended trade-off rather than punishing evictions with cache costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import MemoryTechnology, Protection
from ..errors import MappingError
from .costs import ScenarioCostModel
from .plan import MappingPlan
from .priorities import OptimizationMode, thresholds_for_mode


@dataclass(frozen=True)
class MdaDecision:
    """One logged decision, for explainability and Table II checks."""

    step: int
    block: str
    action: str
    detail: str = ""


@dataclass
class MdaResult:
    """Everything the off-line phase produced."""

    plan: MappingPlan
    decisions: list = field(default_factory=list)
    evicted: list = field(default_factory=list)
    write_threshold: float = 0.0
    perf_overhead: float = 0.0
    energy_overhead: float = 0.0
    #: which profile drove the mapping: "dynamic" (measured), "static"
    #: (repro.analysis estimate), "trace", or "synthetic"
    profile_flavor: str = "dynamic"

    def log(self, step, block, action, detail=""):
        self.decisions.append(MdaDecision(step, block, action, detail))


def _find_region(config, spm_config, predicate, description):
    for region in spm_config.regions:
        if predicate(region):
            return region.name
    raise MappingError(
        "config %r has no %s region (MDA needs the hybrid structure)"
        % (config.name, description))


class MappingDeterminer:
    """Off-line mapping phase bound to one hybrid platform config."""

    def __init__(self, config, thresholds=None,
                 mode=OptimizationMode.BALANCED, cost_model_factory=None):
        self.config = config
        self.thresholds = thresholds or thresholds_for_mode(mode)
        self.mode = mode
        self._cost_model_factory = (
            cost_model_factory
            or (lambda profile: ScenarioCostModel(profile, config)))
        self.ispm_region = _find_region(
            config, config.instruction_spm,
            lambda region: True, "instruction-SPM")
        self.stt_region = _find_region(
            config, config.data_spm,
            lambda region: region.technology is MemoryTechnology.STT_RAM,
            "STT-RAM data")
        self.ecc_region = _find_region(
            config, config.data_spm,
            lambda region: region.protection is Protection.SECDED,
            "SEC-DED data")
        self.parity_region = _find_region(
            config, config.data_spm,
            lambda region: region.protection is Protection.PARITY,
            "parity data")

    # --- pool-aware overhead evaluation ----------------------------------------

    def _overheads(self, cost_model, plan, pool, profile):
        """(perf, energy) overhead, pricing pooled blocks at parity cost."""
        cost = cost_model.cost_of(plan)
        extra_cycles = 0.0
        extra_energy = 0.0
        parity_model = cost_model.energy_models.get(self.parity_region)
        for name in pool:
            stats = profile.get(name)
            accesses = stats.reads + stats.writes
            # Pool blocks were priced as unmapped (cache); reprice at the
            # parity extreme point: 1 cycle and parity energies.
            cache = cost_model.cache_cost
            extra_cycles += accesses * (1.0 - cache.latency)
            if parity_model is not None:
                extra_energy += (
                    stats.reads * (parity_model.read_energy
                                   - cache.read_energy)
                    + stats.writes * (parity_model.write_energy
                                      - cache.write_energy))
        ideal = cost_model.ideal_cost()
        total_cycles = cost.total_cycles + extra_cycles
        total_energy = cost.dynamic_energy + extra_energy
        perf = ((total_cycles - ideal.total_cycles) / ideal.total_cycles
                if ideal.total_cycles else 0.0)
        energy = ((total_energy - ideal.dynamic_energy)
                  / ideal.dynamic_energy if ideal.dynamic_energy else 0.0)
        return perf, energy

    # --- the algorithm ------------------------------------------------------------

    def map(self, profile):
        """Run Algorithm 1 on a profile; returns an :class:`MdaResult`."""
        plan = MappingPlan.empty(self.config)
        result = MdaResult(plan=plan,
                           profile_flavor=getattr(profile, "flavor",
                                                  "dynamic"))
        cost_model = self._cost_model_factory(profile)
        pool = []  # block names evicted from (or never admitted to) STT

        # Step 1a: instruction blocks into the STT-RAM I-SPM.
        ispm = plan.slots[self.ispm_region]
        for stats in sorted(profile.code_blocks(),
                            key=lambda s: s.accesses, reverse=True):
            if ispm.fits(stats.size):
                plan.assign(stats, self.ispm_region)
                result.log(1, stats.name, "map-ispm")
            else:
                plan.leave_unmapped(stats)
                result.log(1, stats.name, "unmapped",
                           "does not fit instruction SPM")

        # Step 1b: data blocks into the STT-RAM data region.
        stt = plan.slots[self.stt_region]
        data_blocks = profile.by_susceptibility(profile.data_blocks())
        for stats in data_blocks:
            if stt.fits(stats.size):
                plan.assign(stats, self.stt_region)
                result.log(1, stats.name, "map-stt")
            else:
                pool.append(stats.name)
                result.log(1, stats.name, "pool",
                           "does not fit STT-RAM region")

        def stt_resident():
            """STT-resident data blocks, least susceptible first (step 2)."""
            names = [a.block_name
                     for a in plan.blocks_in_region(self.stt_region)]
            return sorted((profile.get(name) for name in names),
                          key=lambda s: s.susceptibility)

        def evict(stats, step, reason):
            plan.unassign(stats.name, stats.size)
            pool.append(stats.name)
            result.log(step, stats.name, "evict-stt", reason)

        # Step 3: performance budget.
        while True:
            perf, _ = self._overheads(cost_model, plan, pool, profile)
            if perf <= self.thresholds.performance_overhead:
                break
            candidates = stt_resident()
            if not candidates:
                break
            evict(candidates[0], 3,
                  "performance overhead %.3f > %.3f"
                  % (perf, self.thresholds.performance_overhead))

        # Step 4: energy budget.
        while True:
            _, energy = self._overheads(cost_model, plan, pool, profile)
            if energy <= self.thresholds.energy_overhead:
                break
            candidates = stt_resident()
            if not candidates:
                break
            evict(candidates[0], 4,
                  "energy overhead %.3f > %.3f"
                  % (energy, self.thresholds.energy_overhead))

        # Step 5: endurance guard.
        total_data_writes = sum(
            stats.writes for stats in profile.data_blocks())
        write_threshold = self.thresholds.write_threshold(total_data_writes)
        result.write_threshold = write_threshold
        for stats in stt_resident():
            if stats.writes > write_threshold:
                evict(stats, 5,
                      "writes %d > threshold %.0f"
                      % (stats.writes, write_threshold))

        # Step 6: place the pool into SEC-DED / parity by susceptibility.
        self._place_pool(plan, result, pool, profile)
        result.evicted = list(pool)

        plan.repack(profile)
        perf, energy = self._overheads(cost_model, plan, [], profile)
        result.perf_overhead = perf
        result.energy_overhead = energy
        return result

    def _place_pool(self, plan, result, pool, profile):
        if not pool:
            return
        stats_list = [profile.get(name) for name in pool]
        average = (sum(s.susceptibility for s in stats_list)
                   / len(stats_list))
        ecc = plan.slots[self.ecc_region]
        parity = plan.slots[self.parity_region]
        stt = plan.slots[self.stt_region]

        def write_intensity(stats):
            words = max(1, stats.size // 4)
            return stats.writes / words * stats.write_skew

        # Under capacity pressure the SRAM regions should absorb the
        # hottest writers first, so any block that falls back to STT-RAM
        # is the coolest one — Algorithm 1 does not specify an order, and
        # this tie-break preserves its endurance intent.
        for stats in sorted(stats_list, key=write_intensity, reverse=True):
            if stats.susceptibility >= average:
                preferred, fallback = ecc, parity
            else:
                preferred, fallback = parity, ecc
            if preferred.fits(stats.size):
                plan.assign(stats, preferred.name)
                result.log(6, stats.name, "map-" + preferred.name,
                           "susceptibility %.3g vs avg %.3g"
                           % (stats.susceptibility, average))
            elif fallback.fits(stats.size):
                plan.assign(stats, fallback.name)
                result.log(6, stats.name, "map-" + fallback.name,
                           "preferred region full")
            elif stt.fits(stats.size):
                # An SPM home — even the wear-limited one — still beats
                # demoting the block to the cache/off-chip path.
                plan.assign(stats, stt.name)
                result.log(6, stats.name, "map-" + stt.name,
                           "SRAM regions full; returned to STT-RAM")
            else:
                plan.leave_unmapped(stats)
                result.log(6, stats.name, "unmapped", "no SPM space left")
