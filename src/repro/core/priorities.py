"""Multi-priority optimisation modes for the MDA.

The paper's algorithm "is also able to optimize the mapping of program
blocks for reliability, performance, power, or endurance according to
system requirements" — the knobs being Algorithm 1's three thresholds.
Each mode is a :class:`Thresholds` preset:

* **BALANCED** (the paper's evaluation setting): lenient performance and
  energy budgets, endurance guarded by a write threshold at 5% of the
  workload's total data writes — for the case study this makes the
  endurance step (step 5) the deciding one, exactly as in Section IV.
* **RELIABILITY**: everything stays in STT-RAM (thresholds disabled).
* **PERFORMANCE** / **POWER**: tight budget on the respective overhead.
* **ENDURANCE**: aggressive write threshold, pushing any block with
  non-trivial write traffic out of the STT-RAM region.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import MappingError


class OptimizationMode(enum.Enum):
    """Which property the mapping should favour."""

    BALANCED = "balanced"
    RELIABILITY = "reliability"
    PERFORMANCE = "performance"
    POWER = "power"
    ENDURANCE = "endurance"


@dataclass(frozen=True)
class Thresholds:
    """Algorithm 1's budgets.

    ``performance_overhead`` and ``energy_overhead`` are fractional
    overheads relative to the ideal (all-parity-SRAM) scenario;
    ``write_fraction`` sets the STT-RAM write threshold as a fraction of
    the workload's total data writes, unless an absolute ``write_count``
    overrides it.
    """

    performance_overhead: float = 1.0
    energy_overhead: float = 10.0
    write_fraction: float = 0.05
    write_count: int = None

    def write_threshold(self, total_data_writes):
        """Resolve the absolute write-cycles threshold of step 5."""
        if self.write_count is not None:
            return self.write_count
        if not 0.0 <= self.write_fraction:
            raise MappingError("write_fraction must be non-negative")
        if math.isinf(self.write_fraction):
            return float("inf")
        return self.write_fraction * total_data_writes


_MODE_PRESETS = {
    OptimizationMode.BALANCED: Thresholds(
        performance_overhead=1.0,
        energy_overhead=10.0,
        write_fraction=0.05,
    ),
    OptimizationMode.RELIABILITY: Thresholds(
        performance_overhead=float("inf"),
        energy_overhead=float("inf"),
        write_fraction=float("inf"),
    ),
    OptimizationMode.PERFORMANCE: Thresholds(
        performance_overhead=0.10,
        energy_overhead=float("inf"),
        write_fraction=0.05,
    ),
    OptimizationMode.POWER: Thresholds(
        performance_overhead=float("inf"),
        energy_overhead=0.5,
        write_fraction=0.05,
    ),
    OptimizationMode.ENDURANCE: Thresholds(
        performance_overhead=float("inf"),
        energy_overhead=float("inf"),
        write_fraction=0.002,
    ),
}


def thresholds_for_mode(mode):
    """The preset budgets for an :class:`OptimizationMode`."""
    try:
        return _MODE_PRESETS[mode]
    except KeyError:
        raise MappingError("unknown optimisation mode %r" % mode) from None
