"""Online phase: lower a mapping plan onto a runnable machine.

The paper's second phase inserts transfer commands into the code so that
blocks are copied between off-chip memory and their SPM homes at run
time.  Here a :class:`~repro.core.plan.MappingPlan` is lowered into the
machine's :class:`~repro.sim.machine.TransferSchedule`: static placements
become before-start DMA maps (charged to the run), and the memory router
then services the program's home addresses from the SPM copies, exactly
as rewritten load/stores would.
"""

from __future__ import annotations

from ..errors import MappingError
from ..sim.machine import Machine, TransferAction, TransferSchedule
from ..tech.nvsim_lite import energy_models_for


def schedule_for_plan(plan, profile):
    """Build the static transfer schedule realising ``plan``.

    ``profile`` supplies each block's home address range (the plan itself
    stores only names and SPM offsets).
    """
    schedule = TransferSchedule()
    for assignment in plan.mapped_blocks():
        block = profile.get(assignment.block_name).block
        if block.size <= 0:
            raise MappingError(
                "block %r has no extent to map" % assignment.block_name)
        schedule.actions.append(TransferAction(
            kind="map",
            home_address=block.home_start,
            size=block.size,
            spm_address=assignment.spm_address,
        ))
    return schedule


def build_machine(program, config, plan=None, profile=None,
                  energy_models=None, engine=None):
    """Wire a ready-to-run :class:`Machine` for a placement.

    With ``plan`` (and the ``profile`` that provides home addresses), the
    machine starts with the plan's static mappings scheduled; without a
    plan it runs everything through the cache.  ``engine`` selects the
    execution engine (``None`` defers to the process default); either
    engine yields byte-identical results.
    """
    energy_models = energy_models or energy_models_for(config)
    schedule = None
    if plan is not None:
        if profile is None:
            raise MappingError(
                "building a machine from a plan needs the profile")
        schedule = schedule_for_plan(plan, profile)
    return Machine(program, config, energy_models=energy_models,
                   schedule=schedule, engine=engine)
