"""Dynamic overlays: time-multiplexing SPM space between blocks.

The paper's online phase supports the *dynamic* SPM approach — blocks
move between off-chip memory and the SPM during execution.  The MDA's
static placement can leave blocks unmapped when the data SPM is full;
the overlay planner recovers SPM residency for blocks whose activity
windows do not overlap a resident block's window: at the phase boundary
the host block is written back and the pending block takes its frame.

Overlays are always functionally safe in this machine model: unmapping
writes the SPM copy home, and any later access to an unmapped range
simply routes through the cache — only performance and energy change.

Phase boundaries are expressed as dynamic instruction counts, estimated
from the profile's cycle timestamps (the profiling run and the mapped
run retire the same instruction stream, so instruction counts — unlike
cycle counts — transfer exactly between platforms).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..profile.blocks import BlockKind
from ..sim.machine import TransferAction, TransferSchedule
from .online import schedule_for_plan


@dataclass(frozen=True)
class Overlay:
    """One planned time-multiplex: ``incoming`` replaces ``host``."""

    host: str
    incoming: str
    spm_address: int
    trigger_instruction: int


@dataclass
class OverlayResult:
    """The overlay planner's output."""

    plan: object
    schedule: TransferSchedule
    overlays: list = field(default_factory=list)
    skipped: list = field(default_factory=list)  # (block, reason)


def _instruction_at_cycle(profile, cycle):
    """Map a profile cycle timestamp to a dynamic instruction count."""
    if profile.total_cycles <= 0:
        return 0
    fraction = min(1.0, max(0.0, cycle / profile.total_cycles))
    return int(fraction * profile.total_instructions)


def _windows_disjoint(first, second):
    """True when ``first``'s window ends before ``second``'s begins."""
    if first.last_touch_cycle is None or second.first_touch_cycle is None:
        return False
    if first.first_touch_cycle is None:
        return False
    return first.last_touch_cycle < second.first_touch_cycle


def plan_with_overlays(profile, mda_result):
    """Extend an MDA result with phase-boundary overlays.

    For every data block the MDA left unmapped, find a resident host
    whose activity window ends before the pending block's begins and
    whose frame is large enough; schedule an unmap/map pair at the
    midpoint of the gap.  Returns an :class:`OverlayResult` whose
    schedule contains the static placements plus the timed swaps.
    """
    plan = mda_result.plan
    schedule = schedule_for_plan(plan, profile)
    result = OverlayResult(plan=plan, schedule=schedule)

    pending = [profile.get(assignment.block_name)
               for assignment in plan.assignments.values()
               if not assignment.mapped
               and profile.get(assignment.block_name).kind.is_data_like]
    pending.sort(key=lambda stats: stats.accesses, reverse=True)

    claimed_hosts = set()
    for stats in pending:
        if stats.first_touch_cycle is None:
            result.skipped.append((stats.name, "never touched"))
            continue
        found = _find_host(profile, plan, stats, claimed_hosts)
        if found is None:
            result.skipped.append(
                (stats.name, "no phase-disjoint host frame"))
            continue
        host, incoming_first = found
        host_assignment = plan.assignment_of(host.name)
        frame = host_assignment.spm_address
        if incoming_first:
            # the pending block's phase precedes the host's: give it the
            # frame statically and defer the host's map to the boundary
            _remove_static_map(schedule, host.block.home_start)
            boundary_cycle = (stats.last_touch_cycle
                              + host.first_touch_cycle) // 2
            trigger = _instruction_at_cycle(profile, boundary_cycle)
            schedule.actions.append(TransferAction(
                kind="map",
                home_address=stats.block.home_start,
                size=stats.size,
                spm_address=frame,
            ))
            schedule.actions.append(TransferAction(
                kind="unmap",
                home_address=stats.block.home_start,
                trigger_instruction=trigger,
            ))
            schedule.actions.append(TransferAction(
                kind="map",
                home_address=host.block.home_start,
                size=host.size,
                spm_address=frame,
                trigger_instruction=trigger,
            ))
        else:
            boundary_cycle = (host.last_touch_cycle
                              + stats.first_touch_cycle) // 2
            trigger = _instruction_at_cycle(profile, boundary_cycle)
            schedule.actions.append(TransferAction(
                kind="unmap",
                home_address=host.block.home_start,
                trigger_instruction=trigger,
            ))
            schedule.actions.append(TransferAction(
                kind="map",
                home_address=stats.block.home_start,
                size=stats.size,
                spm_address=frame,
                trigger_instruction=trigger,
            ))
        claimed_hosts.add(host.name)
        result.overlays.append(Overlay(
            host=host.name,
            incoming=stats.name,
            spm_address=frame,
            trigger_instruction=trigger,
        ))
    return result


def _remove_static_map(schedule, home_address):
    schedule.actions[:] = [
        action for action in schedule.actions
        if not (action.kind == "map"
                and action.home_address == home_address
                and action.trigger_pc is None
                and action.trigger_instruction is None)
    ]


def _find_host(profile, plan, incoming, claimed_hosts):
    """Pick the smallest adequate phase-disjoint host frame.

    Returns ``(host_stats, incoming_first)`` where ``incoming_first``
    tells whether the pending block's window precedes the host's, or
    None when no frame qualifies.
    """
    candidates = []
    for assignment in plan.mapped_blocks():
        if assignment.block_name in claimed_hosts:
            continue
        host = profile.get(assignment.block_name)
        if host.kind is BlockKind.CODE:
            continue
        if host.size < incoming.size:
            continue
        if _windows_disjoint(host, incoming):
            candidates.append((host, False))
        elif _windows_disjoint(incoming, host):
            candidates.append((host, True))
    if not candidates:
        return None
    return min(candidates, key=lambda item: item[0].size)
