"""Baseline and related-work mappers the paper compares against.

* :func:`pure_sram_plan` / :func:`pure_sttram_plan` — the two Table IV
  baselines: a homogeneous SPM, filled greedily by access count (the
  classic frequency-based SPM allocation).
* :func:`steinke_energy_plan` — Steinke et al. (DATE'02)-style
  energy-first allocation: blocks ranked by access density
  (accesses per byte), placed into the cheapest-energy region first.
* :func:`hybrid_write_aware_plan` — Hu et al. (DATE'11)-style hybrid
  SRAM/NVM mapping: write-intensive blocks to SRAM, read-intensive
  blocks to STT-RAM, with **no** reliability awareness — the closest
  prior art to FTSPM's structure, lacking only the vulnerability logic.
"""

from __future__ import annotations

from ..config import MemoryTechnology
from ..errors import MappingError
from ..mem.stats import EnergyModel
from ..tech.nvsim_lite import energy_models_for
from .plan import MappingPlan


def _map_code_blocks(plan, profile, region_name):
    slot = plan.slots[region_name]
    for stats in sorted(profile.code_blocks(),
                        key=lambda s: s.accesses, reverse=True):
        if slot.fits(stats.size):
            plan.assign(stats, region_name)
        else:
            plan.leave_unmapped(stats)


def _single_region(config, spm_config):
    if len(spm_config.regions) != 1:
        raise MappingError(
            "%s of config %r is not homogeneous"
            % (spm_config.name, config.name))
    return spm_config.regions[0].name


def _fill_greedy(plan, profile, blocks, region_names, key):
    """Place blocks (ordered by ``key`` desc) into regions in order."""
    ordered = sorted(blocks, key=key, reverse=True)
    for stats in ordered:
        placed = False
        for region_name in region_names:
            if plan.slots[region_name].fits(stats.size):
                plan.assign(stats, region_name)
                placed = True
                break
        if not placed:
            plan.leave_unmapped(stats)


def pure_sram_plan(profile, config):
    """Greedy frequency-based fill of a homogeneous SEC-DED SRAM SPM."""
    plan = MappingPlan.empty(config)
    _map_code_blocks(plan, profile,
                     _single_region(config, config.instruction_spm))
    data_region = _single_region(config, config.data_spm)
    _fill_greedy(plan, profile, profile.data_blocks(), [data_region],
                 key=lambda s: s.accesses)
    return plan


def pure_sttram_plan(profile, config):
    """Greedy frequency-based fill of a homogeneous STT-RAM SPM."""
    # Structurally identical to the SRAM baseline: the configs differ.
    return pure_sram_plan(profile, config)


def steinke_energy_plan(profile, config, energy_models=None):
    """Energy-first allocation (Steinke-style knapsack by density).

    Regions are tried cheapest-first by average access energy; block
    priority is access density (accesses per byte), the classic greedy
    relaxation of the Steinke ILP.
    """
    energy_models = energy_models or energy_models_for(config)
    plan = MappingPlan.empty(config)
    _map_code_blocks(plan, profile, config.instruction_spm.regions[0].name)

    def region_energy(region_name):
        model = energy_models.get(region_name, EnergyModel())
        return model.read_energy + model.write_energy

    data_regions = sorted(
        (region.name for region in config.data_spm.regions),
        key=region_energy)
    _fill_greedy(plan, profile, profile.data_blocks(), data_regions,
                 key=lambda s: s.accesses / max(1, s.size))
    return plan


def hybrid_write_aware_plan(profile, config, write_ratio_threshold=0.25):
    """Write-aware hybrid mapping (Hu-style), reliability-blind.

    Blocks whose write share of total accesses exceeds the threshold go
    to SRAM (any SRAM region, largest-free-first); the rest go to the
    STT-RAM region.  Vulnerability plays no role — this is the ablation
    point showing what FTSPM's reliability awareness adds.
    """
    plan = MappingPlan.empty(config)
    _map_code_blocks(plan, profile, config.instruction_spm.regions[0].name)
    sram_regions = [region.name for region in config.data_spm.regions
                    if region.technology is MemoryTechnology.SRAM]
    stt_regions = [region.name for region in config.data_spm.regions
                   if region.technology is MemoryTechnology.STT_RAM]
    if not sram_regions or not stt_regions:
        raise MappingError(
            "hybrid mapper needs both SRAM and STT-RAM data regions")
    for stats in sorted(profile.data_blocks(),
                        key=lambda s: s.accesses, reverse=True):
        ratio = stats.writes / max(1, stats.accesses)
        if ratio > write_ratio_threshold:
            preferred = sorted(
                sram_regions,
                key=lambda name: plan.slots[name].free, reverse=True)
            preferred += stt_regions
        else:
            preferred = stt_regions + sorted(
                sram_regions,
                key=lambda name: plan.slots[name].free, reverse=True)
        for region_name in preferred:
            if plan.slots[region_name].fits(stats.size):
                plan.assign(stats, region_name)
                break
        else:
            plan.leave_unmapped(stats)
    return plan
