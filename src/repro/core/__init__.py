"""The paper's contribution: the FTSPM mapping layer.

* :mod:`plan` — mapping plans: which block lives in which SPM region, at
  which offset, and how that turns into DMA transfer schedules.
* :mod:`costs` — scenario cost model: estimated cycles and dynamic
  energy of a plan (what Algorithm 1's threshold checks consume).
* :mod:`mda` — the Mapping Determiner Algorithm (Algorithm 1): the
  six-step, multi-priority, reliability-aware placement.
* :mod:`priorities` — the reliability/performance/power/endurance
  optimisation modes.
* :mod:`baselines` — comparison mappers: pure-SRAM, pure-STT-RAM,
  Steinke-style energy-first, and Hu-style write-aware hybrid.
* :mod:`online` — the online phase: turning a plan into transfer
  schedules and wiring a ready-to-run machine.
"""

from .plan import Assignment, MappingPlan, RegionSlot, region_slots
from .costs import CacheCostEstimate, ScenarioCost, ScenarioCostModel
from .mda import MappingDeterminer, MdaDecision, MdaResult
from .priorities import OptimizationMode, Thresholds, thresholds_for_mode
from .baselines import (
    hybrid_write_aware_plan,
    pure_sram_plan,
    pure_sttram_plan,
    steinke_energy_plan,
)
from .online import build_machine, schedule_for_plan
from .overlay import Overlay, OverlayResult, plan_with_overlays

__all__ = [
    "Assignment",
    "MappingPlan",
    "RegionSlot",
    "region_slots",
    "CacheCostEstimate",
    "ScenarioCost",
    "ScenarioCostModel",
    "MappingDeterminer",
    "MdaDecision",
    "MdaResult",
    "OptimizationMode",
    "Thresholds",
    "thresholds_for_mode",
    "hybrid_write_aware_plan",
    "pure_sram_plan",
    "pure_sttram_plan",
    "steinke_energy_plan",
    "build_machine",
    "schedule_for_plan",
    "Overlay",
    "OverlayResult",
    "plan_with_overlays",
]
