"""Mapping plans: block -> SPM region placements with address assignment.

A :class:`MappingPlan` is the MDA's output (Table II of the paper): for
every program block, whether it is mapped and into which region, plus the
concrete SPM offset chosen for it.  Plans know how to

* enumerate ``(block_stats, protection)`` pairs for the AVF model,
* compute per-region occupancy,
* lower themselves into the transfer schedule executed by the machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import Protection
from ..errors import MappingError
from ..mem.hierarchy import DSPM_BASE, ISPM_BASE


@dataclass
class RegionSlot:
    """Allocatable view of one SPM region: capacity and a bump cursor."""

    name: str
    spm_name: str  # "I-SPM" or "D-SPM"
    base: int  # absolute SPM-window address of the region start
    size: int
    protection: Protection
    read_latency: int
    write_latency: int
    used: int = 0

    @property
    def free(self):
        return self.size - self.used

    def fits(self, size):
        return size <= self.free

    def allocate(self, size):
        if not self.fits(size):
            raise MappingError(
                "region %r cannot fit %d bytes (%d free)"
                % (self.name, size, self.free))
        address = self.base + self.used
        self.used += size
        return address


def region_slots(config):
    """Build fresh :class:`RegionSlot` allocators for a platform config.

    Region layout matches :func:`repro.mem.spm.build_scratchpad`: regions
    are laid out contiguously in configuration order.
    """
    slots = {}
    for spm_config, base in ((config.instruction_spm, ISPM_BASE),
                             (config.data_spm, DSPM_BASE)):
        cursor = base
        for region in spm_config.regions:
            if region.name in slots:
                raise MappingError("duplicate region name %r" % region.name)
            slots[region.name] = RegionSlot(
                name=region.name,
                spm_name=spm_config.name,
                base=cursor,
                size=region.size,
                protection=region.protection,
                read_latency=region.read_latency,
                write_latency=region.write_latency,
            )
            cursor += region.size
    return slots


@dataclass(frozen=True)
class Assignment:
    """One block's placement: region name (or None) and SPM address."""

    block_name: str
    region_name: str = None  # None = not mapped (serviced by the cache)
    spm_address: int = None

    @property
    def mapped(self):
        return self.region_name is not None


@dataclass
class MappingPlan:
    """A complete placement for one program on one platform config."""

    config: object
    assignments: dict = field(default_factory=dict)  # block -> Assignment
    slots: dict = field(default_factory=dict)  # region name -> RegionSlot

    @classmethod
    def empty(cls, config):
        return cls(config=config, slots=region_slots(config))

    # --- construction -----------------------------------------------------

    def assign(self, stats, region_name):
        """Place a block into a region (bump allocation)."""
        if stats.name in self.assignments:
            raise MappingError("block %r is already assigned" % stats.name)
        slot = self._slot(region_name)
        address = slot.allocate(stats.size)
        assignment = Assignment(stats.name, region_name, address)
        self.assignments[stats.name] = assignment
        return assignment

    def leave_unmapped(self, stats):
        assignment = Assignment(stats.name)
        self.assignments[stats.name] = assignment
        return assignment

    def unassign(self, block_name, size):
        """Remove a block from the plan (used by MDA's eviction loops).

        Bump allocation cannot reclaim interior holes cheaply, so the MDA
        re-packs regions after its eviction phases; this simply forgets
        the assignment and returns the freed region name.
        """
        assignment = self.assignments.pop(block_name, None)
        if assignment is None or not assignment.mapped:
            return None
        self._slot(assignment.region_name).used -= size
        return assignment.region_name

    def repack(self, profile):
        """Re-run bump allocation so offsets are contiguous again."""
        by_region = {}
        for name, assignment in self.assignments.items():
            if assignment.mapped:
                by_region.setdefault(assignment.region_name, []).append(name)
        for slot in self.slots.values():
            slot.used = 0
        for region_name, names in by_region.items():
            slot = self._slot(region_name)
            for name in sorted(names,
                               key=lambda n: profile.get(n).size,
                               reverse=True):
                stats = profile.get(name)
                address = slot.allocate(stats.size)
                self.assignments[name] = Assignment(
                    name, region_name, address)
        return self

    def _slot(self, region_name):
        try:
            return self.slots[region_name]
        except KeyError:
            raise MappingError("unknown region %r" % region_name) from None

    # --- queries ---------------------------------------------------------------

    def assignment_of(self, block_name):
        try:
            return self.assignments[block_name]
        except KeyError:
            raise MappingError(
                "block %r is not in the plan" % block_name) from None

    def mapped_blocks(self):
        return [a for a in self.assignments.values() if a.mapped]

    def blocks_in_region(self, region_name):
        return [a for a in self.assignments.values()
                if a.region_name == region_name]

    def protection_of(self, block_name):
        """Protection scheme covering a block (None when unmapped)."""
        assignment = self.assignment_of(block_name)
        if not assignment.mapped:
            return None
        return self._slot(assignment.region_name).protection

    def region_occupancy(self):
        return {name: slot.used for name, slot in self.slots.items()}

    def assignment_table(self):
        """``{block name: region name or None}`` for every block.

        The structural differ (:mod:`repro.diff`) aligns plans on this
        table; block names are the stable identity that survives
        recompilation and region resizing.
        """
        return {name: assignment.region_name
                for name, assignment in self.assignments.items()}

    def total_spm_bytes(self):
        return sum(slot.size for slot in self.slots.values())

    def avf_entries(self, profile):
        """``(block_stats, protection)`` pairs for the AVF model."""
        entries = []
        for assignment in self.mapped_blocks():
            stats = profile.get(assignment.block_name)
            entries.append(
                (stats, self._slot(assignment.region_name).protection))
        return entries

    # --- reporting (Table II) ------------------------------------------------------

    def table_rows(self, profile):
        """Rows in the layout of the paper's Table II."""
        labels = {
            Protection.IMMUNE: "STT-RAM",
            Protection.SECDED: "SRAM(ECC)",
            Protection.PARITY: "SRAM(Parity)",
            Protection.NONE: "SRAM",
        }
        rows = []
        for name in profile.blocks:
            assignment = self.assignments.get(name)
            if assignment is None or not assignment.mapped:
                rows.append((name, "No", "-"))
            else:
                protection = self._slot(assignment.region_name).protection
                rows.append((name, "Yes", labels[protection]))
        return rows

    def format_table(self, profile, title="Mapping Determiner output"):
        rows = [("Block Name", "Mapped to SPM", "Region")]
        rows.extend(self.table_rows(profile))
        widths = [max(len(str(row[i])) for row in rows) for i in range(3)]
        lines = [title]
        for index, row in enumerate(rows):
            lines.append("  ".join(
                str(cell).ljust(width) for cell, width in zip(row, widths)))
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        return "\n".join(lines)
