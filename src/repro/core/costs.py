"""Scenario cost model: cycles and energy of a mapping plan.

Algorithm 1's threshold checks ("performance overhead of current mapping
scenario", "power overhead of current mapping scenario") need a fast
estimator that can be re-evaluated inside the eviction loops.  The model
prices every block's profiled accesses at its assigned region's latency
and per-access energy; unmapped blocks pay an amortised cache cost
(hit latency plus miss-rate-weighted line fills); mapped blocks pay a
one-time DMA fill.

Overheads are measured against the paper's stated extreme point: the
all-parity-SRAM scenario is optimal for both performance and dynamic
energy, so ``perf_overhead`` and ``energy_overhead`` are relative to it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mem.dma import BURST_ENERGY_FRACTION
from ..mem.stats import EnergyModel
from ..tech.nvsim_lite import energy_models_for

_WORD = 4


@dataclass(frozen=True)
class CacheCostEstimate:
    """Amortised per-access cost of going through the L1 cache."""

    latency: float
    read_energy: float
    write_energy: float


@dataclass(frozen=True)
class ScenarioCost:
    """Estimated cost of one mapping scenario."""

    memory_cycles: float
    transfer_cycles: float
    dynamic_energy: float
    base_cycles: float

    @property
    def total_cycles(self):
        return self.base_cycles + self.memory_cycles + self.transfer_cycles


class ScenarioCostModel:
    """Prices mapping plans for one profiled workload on one platform."""

    def __init__(self, profile, config, energy_models=None,
                 cache_miss_rate=0.08):
        self.profile = profile
        self.config = config
        self.energy_models = energy_models or energy_models_for(config)
        self.cache_miss_rate = cache_miss_rate
        self._cache_cost = self._estimate_cache_cost()
        self._ideal = None

    # --- cache estimate ---------------------------------------------------------

    def _estimate_cache_cost(self):
        cache = self.config.cache
        off_chip = self.config.off_chip
        words_per_line = cache.line_size // _WORD
        fill_cycles = (off_chip.latency
                       + (words_per_line - 1) * off_chip.burst_word_latency)
        cache_model = self.energy_models.get("cache", EnergyModel())
        dram_model = self.energy_models.get("dram", EnergyModel())
        fill_energy = self.cache_miss_rate * (
            dram_model.read_energy * words_per_line
            * BURST_ENERGY_FRACTION)
        return CacheCostEstimate(
            latency=cache.latency + self.cache_miss_rate * fill_cycles,
            read_energy=cache_model.read_energy + fill_energy,
            write_energy=cache_model.write_energy + fill_energy,
        )

    @property
    def cache_cost(self):
        return self._cache_cost

    # --- per-block pricing -----------------------------------------------------------

    def _block_cost(self, stats, plan):
        """(cycles, energy, transfer_cycles, transfer_energy) of one block."""
        assignment = plan.assignments.get(stats.name)
        reads = stats.reads
        writes = stats.writes
        if assignment is None or not assignment.mapped:
            cost = self._cache_cost
            cycles = reads * cost.latency + writes * cost.latency
            energy = (reads * cost.read_energy
                      + writes * cost.write_energy)
            return cycles, energy, 0.0, 0.0
        slot = plan.slots[assignment.region_name]
        model = self.energy_models.get(assignment.region_name,
                                       EnergyModel())
        cycles = reads * slot.read_latency + writes * slot.write_latency
        energy = (reads * model.read_energy + writes * model.write_energy)
        words = (stats.size + _WORD - 1) // _WORD
        off_chip = self.config.off_chip
        dram_model = self.energy_models.get("dram", EnergyModel())
        transfer_cycles = (off_chip.latency
                           + (words - 1) * off_chip.burst_word_latency
                           + words * slot.write_latency)
        transfer_energy = words * (
            dram_model.read_energy * BURST_ENERGY_FRACTION
            + model.write_energy)
        return cycles, energy, transfer_cycles, transfer_energy

    # --- public API ---------------------------------------------------------------------

    def cost_of(self, plan, include_transfers=True):
        """Estimate a plan's memory cycles and dynamic energy."""
        memory_cycles = 0.0
        transfer_cycles = 0.0
        dynamic_energy = 0.0
        for stats in self.profile.blocks.values():
            cycles, energy, t_cycles, t_energy = self._block_cost(stats, plan)
            memory_cycles += cycles
            dynamic_energy += energy
            if include_transfers:
                transfer_cycles += t_cycles
                dynamic_energy += t_energy
        return ScenarioCost(
            memory_cycles=memory_cycles,
            transfer_cycles=transfer_cycles,
            dynamic_energy=dynamic_energy,
            base_cycles=float(self.profile.total_instructions),
        )

    def ideal_cost(self):
        """The all-parity-SRAM extreme point (1-cycle, cheapest energy).

        Cached — it does not depend on the plan.
        """
        if self._ideal is None:
            read_energy = min(
                (model.read_energy
                 for name, model in self.energy_models.items()
                 if name not in ("cache", "dram")),
                default=0.0)
            write_energy = min(
                (model.write_energy
                 for name, model in self.energy_models.items()
                 if name not in ("cache", "dram")),
                default=0.0)
            cycles = 0.0
            energy = 0.0
            for stats in self.profile.blocks.values():
                cycles += stats.reads + stats.writes
                energy += (stats.reads * read_energy
                           + stats.writes * write_energy)
            self._ideal = ScenarioCost(
                memory_cycles=cycles,
                transfer_cycles=0.0,
                dynamic_energy=energy,
                base_cycles=float(self.profile.total_instructions),
            )
        return self._ideal

    def perf_overhead(self, plan):
        """Fractional slowdown of ``plan`` vs the ideal scenario."""
        ideal = self.ideal_cost()
        cost = self.cost_of(plan)
        if ideal.total_cycles == 0:
            return 0.0
        return (cost.total_cycles - ideal.total_cycles) / ideal.total_cycles

    def energy_overhead(self, plan):
        """Fractional dynamic-energy overhead of ``plan`` vs ideal."""
        ideal = self.ideal_cost()
        cost = self.cost_of(plan)
        if ideal.dynamic_energy == 0:
            return 0.0
        return ((cost.dynamic_energy - ideal.dynamic_energy)
                / ideal.dynamic_energy)
