"""Structured diagnostics shared by the assembler and the static analyzer.

A :class:`Finding` is one machine-readable diagnostic: a stable rule id
(``asm.duplicate-label``, ``lint.dead-store``, ...), a severity, a
human message, and a source span.  The assembler converts its
exceptions into findings (so ``repro lint`` reports syntax errors in
the same shape as semantic ones) and :mod:`repro.analysis.lint` emits
them natively.  Both the text and JSON renderings live here so every
producer formats identically — the JSON form is what CI gates on.

This module sits below :mod:`repro.errors` in the import graph on
purpose: exceptions carry findings, never the other way around.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


#: the one exit-code contract every report-producing CLI obeys
#: (``repro lint``, ``repro diff``, ``repro devlint``):
#: 0 = clean, 1 = findings/violations, 2 = the producer itself failed.
EXIT_CLEAN = 0
EXIT_VIOLATION = 1
EXIT_ERROR = 2


class Severity(enum.Enum):
    """How bad a finding is.  ``ERROR`` findings gate CI."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self):
        return {"error": 2, "warning": 1, "info": 0}[self.value]


@dataclass(frozen=True)
class SourceSpan:
    """An inclusive 1-based line range in the assembly source."""

    start: int
    end: int

    @classmethod
    def line(cls, line_no):
        """A single-line span (the common case)."""
        return cls(line_no, line_no)

    def union(self, other):
        if other is None:
            return self
        return SourceSpan(min(self.start, other.start),
                          max(self.end, other.end))

    def __str__(self):
        if self.start == self.end:
            return str(self.start)
        return "%d-%d" % (self.start, self.end)


@dataclass(frozen=True)
class Finding:
    """One structured diagnostic."""

    rule: str
    severity: Severity
    message: str
    span: SourceSpan = None
    source: str = ""  # program / file the finding is about
    snippet: str = ""  # offending source text, when known
    block: str = ""  # enclosing code block (function), when known

    def to_dict(self):
        payload = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "line": self.span.start if self.span else None,
            "end_line": self.span.end if self.span else None,
        }
        if self.source:
            payload["source"] = self.source
        if self.snippet:
            payload["snippet"] = self.snippet
        if self.block:
            payload["block"] = self.block
        return payload

    def format(self):
        """One text line: ``source:span: severity [rule] message``."""
        location = self.source or "<program>"
        if self.span is not None:
            location = "%s:%s" % (location, self.span)
        text = "%s: %s [%s] %s" % (
            location, self.severity.value, self.rule, self.message)
        if self.snippet:
            text += "\n    %s" % self.snippet.strip()
        return text


def worst_severity(findings):
    """The highest severity present, or None for an empty list."""
    worst = None
    for finding in findings:
        if worst is None or finding.severity.rank > worst.rank:
            worst = finding.severity
    return worst


def exit_code_for(findings, gate=Severity.ERROR):
    """Exit code for a findings list under one gate severity.

    ``repro lint`` gates on errors (warnings inform, they do not
    fail); ``repro devlint`` passes ``gate=Severity.INFO`` because an
    unbaselined finding of *any* severity is a new violation.
    """
    worst = worst_severity(findings)
    if worst is not None and worst.rank >= gate.rank:
        return EXIT_VIOLATION
    return EXIT_CLEAN


def severity_counts(findings):
    counts = {severity.value: 0 for severity in Severity}
    for finding in findings:
        counts[finding.severity.value] += 1
    return counts


def format_findings_text(findings, source=""):
    """The human rendering: one block per finding plus a summary line."""
    lines = [finding.format() for finding in findings]
    counts = severity_counts(findings)
    summary = "%d error(s), %d warning(s), %d info" % (
        counts["error"], counts["warning"], counts["info"])
    if not findings:
        label = source or "program"
        lines.append("%s: clean (no findings)" % label)
    lines.append(summary)
    return "\n".join(lines)


def format_findings_json(findings, source=""):
    """The CI rendering: deterministic, machine-parseable JSON."""
    payload = {
        "schema": 1,
        "source": source,
        "findings": [finding.to_dict() for finding in findings],
        "summary": severity_counts(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def emit_report(report, fmt="text", out=None, stream=None,
                error_stream=None):
    """Render a report object and return its exit code.

    The one renderer behind ``repro lint``, ``repro diff``, and
    ``repro devlint``.  ``report`` is anything with ``to_text()``,
    ``to_json()``, and an ``exit_code`` attribute or property:

    * the chosen format prints to ``stream`` (stdout by default);
    * ``out``, when given, always receives the JSON rendering — CI
      archives machine-readable reports regardless of what a human
      watched scroll by — and the "wrote" notice goes to stderr when
      the main stream is JSON so it never corrupts piped output.
    """
    import sys

    stream = stream if stream is not None else sys.stdout
    error_stream = (error_stream if error_stream is not None
                    else sys.stderr)
    rendered = report.to_json() if fmt == "json" else report.to_text()
    print(rendered, file=stream)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
            handle.write("\n")
        print("wrote %s" % out,
              file=error_stream if fmt == "json" else stream)
    exit_code = report.exit_code
    return exit_code() if callable(exit_code) else exit_code


@dataclass
class FindingCollector:
    """Accumulates findings for one source; shared by lint passes."""

    source: str = ""
    findings: list = field(default_factory=list)

    def add(self, rule, severity, message, span=None, snippet="", block=""):
        finding = Finding(rule=rule, severity=severity, message=message,
                          span=span, source=self.source, snippet=snippet,
                          block=block)
        self.findings.append(finding)
        return finding

    def error(self, rule, message, **kwargs):
        return self.add(rule, Severity.ERROR, message, **kwargs)

    def warning(self, rule, message, **kwargs):
        return self.add(rule, Severity.WARNING, message, **kwargs)

    def info(self, rule, message, **kwargs):
        return self.add(rule, Severity.INFO, message, **kwargs)
