"""The access-event bus: one typed event stream for all instrumentation.

Historically every consumer wired itself up differently: the profiler
registered a memory-system observer *and* appended a CPU call listener,
the trace recorder registered another observer with its own positional
callback signature, and energy/ACE accounting lived inside ad-hoc hooks.
This module replaces that with a single :class:`EventBus` carried by
:class:`~repro.mem.hierarchy.MemorySystem` and shared by
:class:`~repro.sim.machine.Machine`:

* the memory system publishes one :class:`AccessEvent` per routed
  architectural access (fetch, read, or write),
* the CPU publishes one :class:`CallEvent` per executed ``bl``,
* any number of subscribers — profiler, trace recorder, energy ledger,
  ACE tracker — receive the same stream, uniformly, in subscription
  order.  Subscribers never interact, so their outputs are independent
  of subscription order (tested).

A subscriber is any callable taking the event; :class:`EventSubscriber`
is an optional base class that dispatches to ``on_access``/``on_call``
by event type.  One simulation pass feeds every consumer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class EventKind(enum.Enum):
    """What happened on the bus."""

    FETCH = "fetch"
    READ = "read"
    WRITE = "write"
    CALL = "call"


@dataclass(frozen=True)
class AccessEvent:
    """One routed architectural access.

    ``address`` is always the *home* (program) address the CPU issued —
    remapping into the SPM is internal to the router.  ``device_name``
    names the leaf device (SPM region, cache) that serviced the access,
    ``cycles`` its latency, ``energy`` the dynamic energy charged to
    that device for this access (line-fill traffic charged to DRAM by
    the cache is not included), and ``at_cycle`` the CPU cycle counter
    at issue time (0 for a bare memory system with no clock wired).
    """

    kind: EventKind
    address: int
    size: int
    device_name: str
    cycles: int
    energy: float = 0.0
    at_cycle: int = 0

    @property
    def is_fetch(self):
        return self.kind is EventKind.FETCH

    @property
    def is_write(self):
        return self.kind is EventKind.WRITE


@dataclass(frozen=True)
class CallEvent:
    """One executed function call (``bl``)."""

    kind: EventKind
    target: int
    at_cycle: int = 0

    @classmethod
    def at(cls, target, at_cycle=0):
        return cls(kind=EventKind.CALL, target=target, at_cycle=at_cycle)


class EventBus:
    """Synchronous publish/subscribe hub for simulation events.

    ``clock`` is a zero-argument callable giving the current CPU cycle;
    the machine wires it to its cycle counter so published events carry
    timestamps.  Publishing is a plain loop over subscribers — this is
    on the simulator's innermost path, so there is no queueing, no
    filtering layer, and no per-event allocation beyond the event.
    """

    def __init__(self, clock=None):
        self.clock = clock or (lambda: 0)
        self._subscribers = []

    # --- wiring ------------------------------------------------------------

    def subscribe(self, handler):
        """Register ``handler(event)``; returns the handler for chaining."""
        self._subscribers.append(handler)
        return handler

    def unsubscribe(self, handler):
        self._subscribers.remove(handler)

    def is_subscribed(self, handler):
        return handler in self._subscribers

    @property
    def subscriber_count(self):
        return len(self._subscribers)

    # --- publishing ---------------------------------------------------------

    def now(self):
        """The current cycle timestamp events are stamped with."""
        return self.clock()

    def publish(self, event):
        for handler in self._subscribers:
            handler(event)

    def publish_access(self, kind, address, size, device_name, cycles,
                       energy=0.0):
        """Build and publish one :class:`AccessEvent`, stamped now."""
        if not self._subscribers:
            return None
        event = AccessEvent(kind, address, size, device_name, cycles,
                            energy, self.clock())
        for handler in self._subscribers:
            handler(event)
        return event

    def publish_call(self, target):
        """Build and publish one :class:`CallEvent`, stamped now."""
        if not self._subscribers:
            return None
        event = CallEvent(EventKind.CALL, target, self.clock())
        for handler in self._subscribers:
            handler(event)
        return event


class EventSubscriber:
    """Optional base class dispatching events by type.

    Subclasses override :meth:`on_access` and/or :meth:`on_call`; the
    instance itself is the bus handler (``bus.subscribe(subscriber)``).
    """

    def __call__(self, event):
        if isinstance(event, AccessEvent):
            self.on_access(event)
        elif isinstance(event, CallEvent):
            self.on_call(event)

    def on_access(self, event):
        pass

    def on_call(self, event):
        pass


class EnergyLedger(EventSubscriber):
    """Bus subscriber accumulating dynamic energy and cycles per device.

    The devices keep their own authoritative counters; the ledger is the
    bus-side view of the same accounting, letting analyses aggregate
    energy without reaching into device objects (and letting tests prove
    the event stream carries complete energy information).
    """

    def __init__(self):
        self.energy_by_device = {}
        self.cycles_by_device = {}
        self.events = 0

    def on_access(self, event):
        self.events += 1
        name = event.device_name
        self.energy_by_device[name] = (
            self.energy_by_device.get(name, 0.0) + event.energy)
        self.cycles_by_device[name] = (
            self.cycles_by_device.get(name, 0) + event.cycles)

    @property
    def total_energy(self):
        return sum(self.energy_by_device.values())

    def energy_of(self, device_name):
        return self.energy_by_device.get(device_name, 0.0)


class LegacyObserverAdapter:
    """Wraps a positional-callback observer as a bus subscriber.

    Preserves the historical ``MemorySystem.add_observer`` signature —
    ``callback(access_type, address, size, is_write, device_name,
    cycles)`` — on top of the typed stream.  Call events are filtered
    out, as legacy observers never saw them.
    """

    def __init__(self, callback):
        from .mem.hierarchy import AccessType
        self._access_type = AccessType
        self.callback = callback

    def __call__(self, event):
        if isinstance(event, AccessEvent):
            access_type = (self._access_type.FETCH if event.is_fetch
                           else self._access_type.DATA)
            self.callback(access_type, event.address, event.size,
                          event.is_write, event.device_name, event.cycles)
