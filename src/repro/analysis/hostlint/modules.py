"""Module discovery and import resolution for the host-side checker.

A :class:`ModuleInfo` is one parsed source file of the ``repro``
package: its dotted module name, its path (for findings and baseline
identity), its AST, and the resolved *import map* — every name the
module binds via ``import``/``from ... import``, mapped to the dotted
thing it refers to.  The import map is what lets every later layer
(call graph, taint sources/sinks) see through aliases: ``import numpy
as np`` makes ``np.random.default_rng`` resolve to
``numpy.random.default_rng``, and ``from time import perf_counter``
makes a bare ``perf_counter()`` resolve to ``time.perf_counter``.

Findings and baseline entries identify files by *package-relative*
path (``repro/service/jobs.py``), so a baseline committed from a
``src/`` checkout still matches when the package is imported from an
installed location.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from ...errors import ReproError


class HostlintError(ReproError):
    """The checker itself could not run (unreadable/unparseable input)."""


@dataclass
class ModuleInfo:
    """One parsed Python module of the package under analysis."""

    name: str  # dotted module name, e.g. "repro.service.jobs"
    path: str  # filesystem path the module was read from
    relpath: str  # package-relative path, e.g. "repro/service/jobs.py"
    tree: ast.Module = None
    source: str = ""
    #: local name -> dotted target ("time", "time.perf_counter",
    #: "repro.campaign.executor.shard_worker", ...)
    imports: dict = field(default_factory=dict)

    @property
    def lines(self):
        return self.source.splitlines()

    def line_text(self, line_no):
        lines = self.lines
        if 1 <= line_no <= len(lines):
            return lines[line_no - 1].strip()
        return ""

    def resolve_name(self, name):
        """Dotted target a bare name refers to, or None if unknown."""
        return self.imports.get(name)

    def resolve_attribute(self, node):
        """Resolve an ``ast.Attribute``/``ast.Name`` chain to a dotted
        string through the import map; None when the base is not a
        module-level name (e.g. ``self.x.y``, call results)."""
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.imports.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))


def package_name_of(module_name):
    """The package a module lives in (its own name for ``__init__``)."""
    return module_name.rsplit(".", 1)[0] if "." in module_name else module_name


def _resolve_relative(module_name, level, target):
    """Absolute dotted form of a ``from ...target import`` statement."""
    # level=1 is the module's own package; each extra level climbs one.
    base_parts = module_name.split(".")
    # The module itself is not a package unless it is an __init__; the
    # parser below always passes names like "repro.service.jobs", where
    # package context is everything but the last component.
    anchor = base_parts[:-1] if len(base_parts) > 1 else base_parts
    climb = level - 1
    if climb > len(anchor):
        return target or ""
    kept = anchor[: len(anchor) - climb]
    if target:
        kept = kept + target.split(".")
    return ".".join(kept)


def import_map(module_name, tree):
    """``{local name: dotted target}`` for every import in ``tree``.

    ``from x import y`` maps ``y -> "x.y"`` — the target may name a
    submodule or an attribute; consumers try both interpretations.
    """
    mapping = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else local
                mapping[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _resolve_relative(module_name, node.level,
                                         node.module or "")
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mapping[local] = ("%s.%s" % (base, alias.name)
                                  if base else alias.name)
    return mapping


def parse_module(name, source, path="<memory>", relpath=None):
    """Build a :class:`ModuleInfo` from source text.

    Raises :class:`HostlintError` on a syntax error — the checker
    cannot analyze what it cannot parse, and a package that stopped
    parsing is a build break, not a finding.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        raise HostlintError(
            "cannot parse %s: %s" % (path, error)) from None
    info = ModuleInfo(name=name, path=path,
                      relpath=relpath or _default_relpath(name),
                      tree=tree, source=source)
    info.imports = import_map(name, tree)
    return info


def _default_relpath(module_name):
    return module_name.replace(".", "/") + ".py"


def package_root(package="repro"):
    """Filesystem directory of an importable package."""
    import importlib

    module = importlib.import_module(package)
    path = getattr(module, "__file__", None)
    if path is None:
        raise HostlintError("package %r has no source directory"
                            % package)
    return os.path.dirname(os.path.abspath(path))


def discover_package(root=None, package="repro"):
    """Parse every ``.py`` file under ``root`` into ModuleInfos.

    ``root`` defaults to the installed location of ``package``.  Files
    are walked and returned in sorted order so every downstream pass —
    and therefore every report — is independent of directory
    enumeration order.
    """
    if root is None:
        root = package_root(package)
    root = os.path.abspath(root)
    modules = []
    for directory, subdirs, files in os.walk(root):
        subdirs[:] = sorted(d for d in subdirs if d != "__pycache__")
        for filename in sorted(files):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(directory, filename)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            if filename == "__init__.py":
                dotted = os.path.dirname(rel).replace("/", ".")
                name = package if not dotted else "%s.%s" % (package,
                                                             dotted)
            else:
                name = "%s.%s" % (package, rel[:-3].replace("/", "."))
                if name.endswith(".__main__"):
                    pass  # __main__ is analyzed like any other module
            try:
                with open(path, encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as error:
                raise HostlintError("cannot read %s: %s"
                                    % (path, error)) from None
            modules.append(parse_module(
                name, source, path=path,
                relpath="%s/%s" % (package, rel)))
    return modules


def build_import_graph(modules):
    """``{module name: set of intra-package modules it imports}``."""
    known = {module.name for module in modules}
    packages = {package_name_of(name) for name in known}
    graph = {module.name: set() for module in modules}
    for module in modules:
        for target in module.imports.values():
            resolved = _intra_package_module(target, known, packages)
            if resolved and resolved != module.name:
                graph[module.name].add(resolved)
    return graph


def _intra_package_module(target, known, packages):
    """Map a dotted import target onto a known module, if any.

    ``repro.campaign.executor.shard_worker`` resolves to the module
    ``repro.campaign.executor``; plain ``repro.campaign`` resolves to
    itself (its ``__init__``).
    """
    if target in known:
        return target
    parent = target.rsplit(".", 1)[0] if "." in target else None
    if parent and parent in known:
        return parent
    if parent and parent in packages and parent in known:
        return parent
    return None
