"""Package index: functions, classes, types, and a light call graph.

The checker needs to answer questions like "what does
``self._ensure_pool().submit`` call?" and "which functions can a pool
entry point reach?" without running any code.  This module builds the
necessary approximation from ASTs alone:

* every function, method, *nested* function, and a synthetic
  ``<module>`` body per file become :class:`FunctionInfo` records;
* classes record their (resolved) bases, their methods, and a
  best-effort *attribute type map* harvested from ``self.x =
  ClassName(...)`` assignments and annotated dataclass fields;
* functions get a best-effort *return type* (the class their return
  expressions construct);
* call sites resolve through: imports → local functions → ``self``
  methods → typed locals/attributes → one-level return types → a
  unique-method-name fallback.  Unresolvable calls resolve to nothing
  rather than to everything — the checker prefers false negatives over
  noise.

Everything is deterministic: modules arrive sorted, and every map is
iterated in insertion or sorted order.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .modules import build_import_graph


@dataclass
class FunctionInfo:
    """One analyzable body of statements (function, method, module)."""

    module: object  # ModuleInfo
    qualname: str  # "repro.campaign.scheduler.ShardScheduler._launch"
    name: str
    node: object  # FunctionDef | AsyncFunctionDef | Module
    klass: str = None  # enclosing class qualname, if a method
    parent: str = None  # enclosing function qualname, if nested
    is_async: bool = False
    return_type: str = None  # dotted type of returned values, if known
    local_types: dict = field(default_factory=dict)  # name -> dotted type

    @property
    def body(self):
        return self.node.body

    @property
    def is_module_body(self):
        return isinstance(self.node, ast.Module)

    @property
    def is_nested(self):
        return self.parent is not None

    def param_names(self):
        """Positional/keyword parameter names, ``self``/``cls`` included."""
        if self.is_module_body:
            return []
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        names.extend(a.arg for a in args.kwonlyargs)
        return names


@dataclass
class ClassInfo:
    """One class: bases, methods, and attribute types/factories."""

    module: object
    qualname: str
    name: str
    node: object
    bases: list = field(default_factory=list)  # resolved dotted names
    methods: dict = field(default_factory=dict)  # name -> qualname
    attr_types: dict = field(default_factory=dict)  # attr -> dotted type
    fields: list = field(default_factory=list)  # annotated attrs, in order


@dataclass
class CallSite:
    """One resolved call expression inside a function."""

    node: object  # the ast.Call
    targets: tuple = ()  # internal FunctionInfo qualnames
    external: str = None  # dotted external name ("time.sleep"), if any


class _ScopedVisitor(ast.NodeVisitor):
    """Walks one function body without descending into nested defs or
    classes (those are separate :class:`FunctionInfo`/:class:`ClassInfo`
    records); lambdas stay inline with their enclosing function."""

    def visit_FunctionDef(self, node):
        pass

    def visit_AsyncFunctionDef(self, node):
        pass

    def visit_ClassDef(self, node):
        pass


def walk_scope(body):
    """Yield every node in ``body`` without entering nested defs."""
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class PackageIndex:
    """All modules of one package, cross-referenced for the rules."""

    def __init__(self, modules):
        self.modules = {module.name: module for module in modules}
        self.import_graph = build_import_graph(modules)
        self.functions = {}  # qualname -> FunctionInfo
        self.classes = {}  # qualname -> ClassInfo
        self.by_method_name = {}  # bare name -> [qualname]
        self.module_globals = {}  # module -> {name: "mutable"|"value"}
        self.param_types = {}  # (qualname, param) -> dotted type
        self._calls = {}  # qualname -> [CallSite]
        for module in modules:
            self._collect_module(module)
        # Types feed call resolution and call resolution feeds types
        # (an argument's type becomes the callee's parameter type), so
        # inference iterates to a fixpoint.  Every map is first-write-
        # wins, so this is monotone and the bound is generous.
        for _ in range(5):
            if not self._infer_round():
                break

    # --- collection -------------------------------------------------------------

    def _collect_module(self, module):
        body_fn = FunctionInfo(module=module,
                               qualname="%s.<module>" % module.name,
                               name="<module>", node=module.tree)
        self._register(body_fn)
        self.module_globals[module.name] = self._globals_of(module)
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(module, node, klass=None,
                                       parent=None)
            elif isinstance(node, ast.ClassDef):
                self._collect_class(module, node)

    def _collect_class(self, module, node):
        qualname = "%s.%s" % (module.name, node.name)
        info = ClassInfo(module=module, qualname=qualname,
                         name=node.name, node=node)
        for base in node.bases:
            resolved = module.resolve_attribute(base)
            if resolved:
                info.bases.append(resolved)
        self.classes[qualname] = info
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._collect_function(module, item, klass=qualname,
                                            parent=None)
                info.methods[item.name] = fn.qualname
            elif isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name):
                info.fields.append(item.target.id)
                self._note_field_type(module, info, item)

    def _note_field_type(self, module, info, item):
        """Dataclass-style ``attr: T = field(...)`` declarations."""
        annotation = module.resolve_attribute(item.annotation)
        if annotation:
            info.attr_types.setdefault(item.target.id,
                                       self._canonical_type(annotation))

    def _collect_function(self, module, node, klass, parent):
        scope = klass or module.name
        if parent:
            scope = parent
        qualname = "%s.%s" % (scope, node.name)
        fn = FunctionInfo(
            module=module, qualname=qualname, name=node.name, node=node,
            klass=klass, parent=parent,
            is_async=isinstance(node, ast.AsyncFunctionDef))
        self._register(fn)
        for child in walk_scope(node.body):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(module, child, klass=None,
                                       parent=qualname)
        return fn

    def _register(self, fn):
        self.functions[fn.qualname] = fn
        self.by_method_name.setdefault(fn.name, []).append(fn.qualname)

    def _globals_of(self, module):
        names = {}
        for node in module.tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            kind = "mutable" if isinstance(
                value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                        ast.DictComp, ast.SetComp)) else "value"
            for target in targets:
                if isinstance(target, ast.Name):
                    names[target.id] = kind
        return names

    # --- type inference ---------------------------------------------------------

    def _canonical_type(self, dotted):
        """Prefer the package-internal class qualname for a type name."""
        if dotted in self.classes:
            return dotted
        # "repro.service.jobs.JobRegistry" style references resolve as
        # they are; bare names match a unique class definition.
        candidates = [qualname for qualname, info in self.classes.items()
                      if info.name == dotted.rsplit(".", 1)[-1]
                      and (dotted == info.name
                           or dotted.endswith("." + info.name))]
        if len(candidates) == 1:
            return candidates[0]
        return dotted

    def _type_of_call(self, module, fn, node):
        """Dotted type of a call result, when the call constructs it."""
        dotted = module.resolve_attribute(node.func)
        if dotted:
            canonical = self._canonical_type(dotted)
            if canonical in self.classes:
                return canonical
            last = dotted.rsplit(".", 1)[-1]
            if last[:1].isupper():  # external constructor by convention
                return dotted
        return None

    def _infer_round(self):
        changed = False
        for fn in self.functions.values():
            if not fn.is_module_body:
                for param in fn.param_names():
                    inferred = self.param_types.get((fn.qualname,
                                                     param))
                    if inferred and param not in fn.local_types:
                        fn.local_types[param] = inferred
                        changed = True
            for node in walk_scope(fn.body):
                if isinstance(node, ast.Assign):
                    inferred = self._expr_type(fn, node.value)
                    if inferred:
                        for target in node.targets:
                            changed |= self._note_type(fn, target,
                                                       inferred)
                elif (isinstance(node, ast.AnnAssign)
                        and node.value is not None):
                    inferred = self._expr_type(fn, node.value)
                    if inferred:
                        changed |= self._note_type(fn, node.target,
                                                   inferred)
                elif (isinstance(node, ast.Return)
                        and node.value is not None
                        and fn.return_type is None):
                    inferred = self._expr_type(fn, node.value)
                    if inferred:
                        fn.return_type = inferred
                        changed = True
                if isinstance(node, ast.Call):
                    changed |= self._note_param_types(fn, node)
        return changed

    def _note_type(self, fn, target, inferred):
        if isinstance(target, ast.Name):
            if target.id not in fn.local_types:
                fn.local_types[target.id] = inferred
                return True
        elif (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and fn.klass in self.classes):
            attrs = self.classes[fn.klass].attr_types
            if target.attr not in attrs:
                attrs[target.attr] = inferred
                return True
        return False

    def _note_param_types(self, fn, node):
        """Argument types flow into the callee's parameter types."""
        targets, _external = self._resolve_callee(fn, node.func)
        changed = False
        for target in targets:
            callee = self.functions[target]
            params = callee.param_names()
            if callee.klass is not None and params:
                params = params[1:]  # bound self/cls
            for position, arg in enumerate(node.args):
                if position < len(params):
                    changed |= self._note_param(target,
                                                params[position],
                                                self._expr_type(fn, arg))
            for keyword in node.keywords:
                if keyword.arg in params:
                    changed |= self._note_param(
                        target, keyword.arg,
                        self._expr_type(fn, keyword.value))
        return changed

    def _note_param(self, qualname, param, inferred):
        if inferred and (qualname, param) not in self.param_types:
            self.param_types[(qualname, param)] = inferred
            return True
        return False

    def _expr_type(self, fn, expr):
        """Best-effort dotted type of an expression inside ``fn``."""
        if isinstance(expr, ast.Call):
            targets, _external = self._resolve_callee(fn, expr.func)
            for target in targets:
                returned = self.functions[target].return_type
                if returned:
                    return returned
            return self._type_of_call(fn.module, fn, expr)
        if isinstance(expr, ast.Name):
            return fn.local_types.get(expr.id)
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self" and fn.klass):
            return self._attr_type(fn.klass, expr.attr)
        if isinstance(expr, ast.Await):
            return self._expr_type(fn, expr.value)
        if isinstance(expr, ast.IfExp):
            return (self._expr_type(fn, expr.body)
                    or self._expr_type(fn, expr.orelse))
        return None

    def _attr_type(self, klass, attr):
        info = self.classes.get(klass)
        while info is not None:
            if attr in info.attr_types:
                return info.attr_types[attr]
            info = self._parent_class(info)
        return None

    def _parent_class(self, info):
        for base in info.bases:
            canonical = self._canonical_type(base)
            if canonical in self.classes:
                return self.classes[canonical]
        return None

    # --- call resolution --------------------------------------------------------

    def calls_of(self, qualname):
        """Every :class:`CallSite` in one function, resolved and cached."""
        if qualname not in self._calls:
            fn = self.functions[qualname]
            sites = []
            for node in walk_scope(fn.body):
                if isinstance(node, ast.Call):
                    sites.append(self.resolve_call(fn, node))
            sites.sort(key=lambda site: (site.node.lineno,
                                         site.node.col_offset))
            self._calls[qualname] = sites
        return self._calls[qualname]

    def resolve_call(self, fn, node):
        """Resolve one ``ast.Call`` to package functions and/or an
        external dotted name."""
        targets, external = self._resolve_callee(fn, node.func)
        return CallSite(node=node, targets=tuple(targets),
                        external=external)

    def _resolve_callee(self, fn, func):
        module = fn.module
        if isinstance(func, ast.Name):
            return self._resolve_bare_name(fn, func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute_call(fn, func)
        if isinstance(func, ast.Call):
            # Immediately-invoked call result: nothing to resolve.
            return [], None
        return [], None

    def _resolve_bare_name(self, fn, name):
        module = fn.module
        # A nested function defined in this scope shadows imports.
        nested = "%s.%s" % (fn.qualname, name)
        if nested in self.functions:
            return [nested], None
        local = "%s.%s" % (module.name, name)
        if local in self.functions:
            return [local], None
        if local in self.classes:
            return self._class_targets(local)
        dotted = module.resolve_name(name)
        if dotted:
            return self._resolve_dotted(dotted)
        return [], None

    def _resolve_attribute_call(self, fn, func):
        module = fn.module
        base = func
        while isinstance(base, ast.Attribute):
            base = base.value
        dotted = module.resolve_attribute(func)
        if dotted:
            targets, external = self._resolve_dotted(dotted)
            if targets:
                return targets, external
            # Only trust the dotted form when its root really is an
            # import; otherwise "state.note_success" would masquerade
            # as an external call and hide the receiver's type.
            if isinstance(base, ast.Name) and base.id in module.imports:
                return targets, external
        # self.method(...) / self.attr.method(...) / var.method(...)
        receiver_type = self._receiver_type(fn, func.value)
        if receiver_type:
            resolved = self._method_on(receiver_type, func.attr)
            if resolved:
                return resolved
            return [], "%s.%s" % (receiver_type, func.attr)
        # Unique method name across the package: good enough to build
        # reachability, never used to *exonerate* a call.
        candidates = [qualname
                      for qualname in self.by_method_name.get(func.attr, ())
                      if self.functions[qualname].klass is not None]
        if len(candidates) == 1:
            return [candidates[0]], None
        return [], None

    def _receiver_type(self, fn, value):
        if isinstance(value, ast.Name):
            if value.id == "self" and fn.klass:
                return fn.klass
            return fn.local_types.get(value.id)
        if (isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self" and fn.klass):
            return self._attr_type(fn.klass, value.attr)
        if isinstance(value, ast.Call):
            targets, _external = self._resolve_callee(fn, value.func)
            for target in targets:
                returned = self.functions[target].return_type
                if returned:
                    return returned
            inferred = self._type_of_call(fn.module, fn, value)
            if inferred:
                return inferred
        return None

    def _method_on(self, receiver_type, method):
        canonical = self._canonical_type(receiver_type)
        info = self.classes.get(canonical)
        while info is not None:
            if method in info.methods:
                return [info.methods[method]], None
            info = self._parent_class(info)
        return None

    def _class_targets(self, class_qualname):
        """Calling a class invokes ``__init__`` (and ``__post_init__``
        for dataclasses) — both matter for taint through constructors."""
        info = self.classes[class_qualname]
        targets = []
        for name in ("__init__", "__post_init__"):
            if name in info.methods:
                targets.append(info.methods[name])
        return targets, class_qualname

    def _resolve_dotted(self, dotted):
        """An import-resolved dotted name: package function, class, or
        external."""
        if dotted in self.functions:
            return [dotted], None
        if dotted in self.classes:
            return self._class_targets(dotted)
        # "repro.campaign.executor.shard_worker" — module attr form.
        head, _, tail = dotted.rpartition(".")
        if head in self.modules:
            qualified = "%s.%s" % (head, tail)
            if qualified in self.functions:
                return [qualified], None
            if qualified in self.classes:
                return self._class_targets(qualified)
        # "HttpResponse.json" / "repro.service.http.HttpResponse.json"
        # — a classmethod/static call qualified by the class itself.
        if head:
            canonical = self._canonical_type(head)
            if canonical in self.classes:
                resolved = self._method_on(canonical, tail)
                if resolved:
                    return resolved
        return [], dotted

    # --- reachability ------------------------------------------------------------

    def transitive_callees(self, roots):
        """All package functions reachable from ``roots`` (inclusive)."""
        seen = set()
        stack = [root for root in roots if root in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for site in self.calls_of(current):
                for target in site.targets:
                    if target not in seen:
                        stack.append(target)
        return seen
