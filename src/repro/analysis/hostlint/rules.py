"""The ``dev.*`` rule registry and rule implementations.

Every rule guards a shipped invariant, and each finding's message says
which.  The three buckets mirror the product claims:

* **determinism** — jobs=1 == jobs=N byte-identical campaigns and
  engine-free artifact keys demand that no wall-clock, environment, or
  enumeration-order nondeterminism reaches a fingerprint, checkpoint,
  or serialized response;
* **concurrency** — the persistent worker pool (PR 7) pickles entry
  points and shares worker processes between jobs, so submissions must
  be module-level functions and workers must not scribble on module
  globals;
* **contract** — event subscribers observe, they do not edit; library
  code never prints to stdout around the byte-stable formatters.

Severity policy matches ``repro lint``: *error* findings are invariant
violations CI gates on; *warning* marks likely-bug patterns; *info*
marks sites worth an eyeball (every wall-clock read outside
``repro.obs`` is at least that).
"""

from __future__ import annotations

import ast

from ...diagnostics import Finding, Severity, SourceSpan
from .callgraph import walk_scope
from .taint import ENV, WALLCLOCK, TaintAnalysis

#: rule id -> (severity, one-line description); the public catalog
DEVLINT_RULES = {
    "dev.unseeded-random": (
        Severity.ERROR,
        "RNG constructed or used without an explicit seed"),
    "dev.wallclock-to-sink": (
        Severity.ERROR,
        "wall-clock-derived value reaches a key/checkpoint/JSON sink"),
    "dev.env-to-key": (
        Severity.ERROR,
        "environment read feeds an artifact-key function"),
    "dev.unsorted-json": (
        Severity.ERROR,
        "json.dump/json.dumps without sort_keys=True"),
    "dev.blocking-in-async": (
        Severity.ERROR,
        "blocking call inside an async def (stalls the event loop)"),
    "dev.unpicklable-submit": (
        Severity.ERROR,
        "lambda/closure/bound method submitted to a worker pool"),
    "dev.event-handler-mutates": (
        Severity.ERROR,
        "EventSubscriber handler mutates its event argument"),
    "dev.unsorted-walk": (
        Severity.WARNING,
        "filesystem enumeration iterated without sorting"),
    "dev.worker-global-write": (
        Severity.WARNING,
        "module-global write reachable from a pool entry point"),
    "dev.print-in-library": (
        Severity.WARNING,
        "print to stdout outside the CLI formatters"),
    "dev.mutable-default": (
        Severity.WARNING,
        "mutable default argument shared across calls"),
    "dev.wallclock-outside-obs": (
        Severity.INFO,
        "wall-clock read outside repro.obs"),
}

#: RNG constructors that accept (and here require) an explicit seed
_SEEDABLE_CTORS = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
}

#: module-level RNG functions: always the hidden, unseeded global state
_GLOBAL_RNG = {
    "random.random", "random.randint", "random.randrange",
    "random.choice", "random.choices", "random.shuffle",
    "random.sample", "random.uniform", "random.gauss",
    "random.getrandbits",
    "numpy.random.rand", "numpy.random.randn", "numpy.random.randint",
    "numpy.random.random", "numpy.random.choice",
    "numpy.random.shuffle", "numpy.random.permutation",
    "numpy.random.uniform", "numpy.random.normal",
}

#: filesystem enumeration with OS-dependent ordering
_FS_ENUM = {
    "os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob",
}

#: dotted external calls that block the calling thread
_BLOCKING_EXTERNAL = {
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "urllib.request.urlopen",
    "socket.create_connection",
}

#: the blocking in-package client (sync HTTP; never from a coroutine)
_BLOCKING_CLIENT_CLASS = "repro.service.client.ServiceClient"

#: method names that mutate their receiver in place
_MUTATORS = {
    "append", "extend", "insert", "add", "update", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "sort", "reverse",
}

_EVENT_BASE = "repro.events.EventSubscriber"

#: modules whose job is stdout (the CLI renders reports there)
_PRINT_ALLOWED = ("repro.cli", "repro.__main__")


def run_rules(index, taint=None):
    """Run every registered rule; returns sorted Finding objects."""
    if taint is None:
        taint = TaintAnalysis(index)
    checker = _Checker(index, taint)
    checker.run()
    checker.findings.sort(key=lambda f: (
        f.source, f.span.start if f.span else 0, -f.severity.rank,
        f.rule, f.message))
    return checker.findings


class _Checker:
    def __init__(self, index, taint):
        self.index = index
        self.taint = taint
        self.findings = []
        self._seen = set()

    # --- plumbing ---------------------------------------------------------------

    def _emit(self, rule, message, module, node=None, block="",
              line=None):
        severity = DEVLINT_RULES[rule][0]
        if line is None and node is not None:
            line = node.lineno
        span = SourceSpan.line(line) if line else None
        snippet = module.line_text(line) if line else ""
        key = (rule, module.relpath, line, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(Finding(
            rule=rule, severity=severity, message=message, span=span,
            source=module.relpath, snippet=snippet, block=block))

    def _block_of(self, fn):
        if fn is None:
            return ""
        prefix = fn.module.name + "."
        if fn.qualname.startswith(prefix):
            return fn.qualname[len(prefix):]
        return fn.qualname

    def run(self):
        self._check_taint_flows()
        self._check_source_sites()
        submits = self._collect_pool_submits()
        self._check_unpicklable_submits(submits)
        self._check_worker_global_writes(submits)
        for qualname, fn in self.index.functions.items():
            self._check_unseeded_random(fn)
            self._check_unsorted_json(fn)
            self._check_unsorted_walk(fn)
            self._check_print(fn)
            self._check_mutable_default(fn)
            if fn.is_async:
                self._check_blocking_in_async(fn)
        self._check_event_handlers()

    # --- determinism: taint-driven rules ----------------------------------------

    def _check_taint_flows(self):
        for flow in self.taint.sink_flows:
            if self.taint.is_exempt(flow.fn.module.name):
                continue
            if WALLCLOCK in flow.domains:
                self._emit(
                    "dev.wallclock-to-sink",
                    "wall-clock-derived value reaches %s sink %s; a "
                    "rerun would serialize different bytes"
                    % (flow.kind, flow.sink),
                    flow.fn.module, node=flow.node,
                    block=self._block_of(flow.fn))
            if ENV in flow.domains and flow.kind == "key":
                self._emit(
                    "dev.env-to-key",
                    "environment-derived value reaches artifact-key "
                    "sink %s; keys must be engine-free" % flow.sink,
                    flow.fn.module, node=flow.node,
                    block=self._block_of(flow.fn))

    def _check_source_sites(self):
        key_fns = {qualname
                   for qualname, kind in self.taint._sink_functions.items()
                   if kind == "key"}
        for site in self.taint.source_sites:
            block = self._block_of(site.fn)
            if site.domain == WALLCLOCK:
                detail = ("deferred via default_factory"
                          if site.deferred else "called")
                self._emit(
                    "dev.wallclock-outside-obs",
                    "%s %s outside repro.obs; route through an "
                    "injectable clock if the value can reach "
                    "serialized output" % (site.dotted, detail),
                    site.module, node=site.node, block=block)
            elif (site.domain == ENV and site.fn is not None
                    and site.fn.qualname in key_fns):
                self._emit(
                    "dev.env-to-key",
                    "%s read inside artifact-key function %s; keys "
                    "must be engine-free" % (site.dotted, block),
                    site.module, node=site.node, block=block)

    # --- determinism: syntactic rules -------------------------------------------

    def _check_unseeded_random(self, fn):
        for site in self.index.calls_of(fn.qualname):
            dotted = site.external
            if dotted in _SEEDABLE_CTORS:
                node = site.node
                seeded = bool(node.args) or any(
                    kw.arg == "seed" for kw in node.keywords)
                if not seeded:
                    self._emit(
                        "dev.unseeded-random",
                        "%s() without a seed; every rerun draws a "
                        "different sequence" % dotted,
                        fn.module, node=node, block=self._block_of(fn))
            elif dotted in _GLOBAL_RNG:
                self._emit(
                    "dev.unseeded-random",
                    "%s uses the hidden global RNG; construct a "
                    "seeded instance instead" % dotted,
                    fn.module, node=site.node,
                    block=self._block_of(fn))

    def _check_unsorted_json(self, fn):
        for site in self.index.calls_of(fn.qualname):
            if site.external not in ("json.dump", "json.dumps"):
                continue
            node = site.node
            sorted_keys = any(
                kw.arg == "sort_keys"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords)
            if not sorted_keys:
                self._emit(
                    "dev.unsorted-json",
                    "%s without sort_keys=True; dict order leaks into "
                    "the serialized bytes" % site.external,
                    fn.module, node=node, block=self._block_of(fn))

    def _check_unsorted_walk(self, fn):
        module = fn.module
        normalized = set()
        for node in walk_scope(fn.body):
            if (isinstance(node, ast.For)
                    and isinstance(node.iter, ast.Call)
                    and module.resolve_attribute(node.iter.func)
                    in _FS_ENUM
                    and self._walk_normalized(node)):
                normalized.add(node.iter)

        def visit(node, inside_sorted):
            if isinstance(node, ast.Call):
                if (isinstance(node.func, ast.Name)
                        and node.func.id == "sorted"):
                    inside_sorted = True
                dotted = module.resolve_attribute(node.func)
                if (dotted in _FS_ENUM and not inside_sorted
                        and node not in normalized):
                    self._emit(
                        "dev.unsorted-walk",
                        "%s order is OS-dependent; wrap in sorted() "
                        "(or sort the dirs list in place) before the "
                        "result can shape output" % dotted,
                        module, node=node, block=self._block_of(fn))
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    continue
                visit(child, inside_sorted)

        for statement in fn.body:
            if isinstance(statement, (ast.FunctionDef,
                                      ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                continue  # separate FunctionInfo covers it
            visit(statement, False)

    def _walk_normalized(self, loop):
        """``for root, dirs, files in os.walk(...)`` counts as ordered
        when the body immediately re-sorts the mutable dirs list —
        ``dirs.sort()`` or ``dirs[:] = sorted(...)`` — which pins the
        traversal order os.walk itself leaves OS-dependent."""
        names = {element.id for element in
                 getattr(loop.target, "elts", [])
                 if isinstance(element, ast.Name)}
        if not names:
            return False
        for statement in loop.body:
            if (isinstance(statement, ast.Expr)
                    and isinstance(statement.value, ast.Call)
                    and isinstance(statement.value.func, ast.Attribute)
                    and statement.value.func.attr == "sort"
                    and isinstance(statement.value.func.value, ast.Name)
                    and statement.value.func.value.id in names):
                return True
            if (isinstance(statement, ast.Assign)
                    and len(statement.targets) == 1
                    and isinstance(statement.targets[0], ast.Subscript)
                    and isinstance(statement.targets[0].value, ast.Name)
                    and statement.targets[0].value.id in names
                    and isinstance(statement.value, ast.Call)
                    and isinstance(statement.value.func, ast.Name)
                    and statement.value.func.id == "sorted"):
                return True
        return False

    def _check_print(self, fn):
        if fn.module.name in _PRINT_ALLOWED:
            return
        for node in walk_scope(fn.body):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"
                    and not any(kw.arg == "file"
                                for kw in node.keywords)):
                self._emit(
                    "dev.print-in-library",
                    "print() to stdout in library code; emit through "
                    "a formatter or pass an explicit stream",
                    fn.module, node=node, block=self._block_of(fn))

    def _check_mutable_default(self, fn):
        if fn.is_module_body:
            return
        args = fn.node.args
        for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None]:
            mutable = isinstance(default,
                                 (ast.List, ast.Dict, ast.Set))
            if (isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set")):
                mutable = True
            if mutable:
                self._emit(
                    "dev.mutable-default",
                    "mutable default argument is shared across "
                    "calls; default to None and build inside",
                    fn.module, node=default, line=fn.node.lineno,
                    block=self._block_of(fn))

    # --- concurrency rules -------------------------------------------------------

    def _check_blocking_in_async(self, fn):
        for site in self.index.calls_of(fn.qualname):
            node = site.node
            reason = None
            if site.external in _BLOCKING_EXTERNAL:
                reason = site.external
            elif (isinstance(node.func, ast.Name)
                    and node.func.id == "open"):
                reason = "open"
            else:
                for target in site.targets:
                    callee = self.index.functions[target]
                    if callee.klass == _BLOCKING_CLIENT_CLASS:
                        reason = target
                        break
            if reason:
                self._emit(
                    "dev.blocking-in-async",
                    "%s blocks the event loop inside async %s; use "
                    "an executor or an async equivalent"
                    % (reason, fn.name),
                    fn.module, node=node, block=self._block_of(fn))

    def _collect_pool_submits(self):
        """Every ``.submit(...)`` landing on a worker pool or the
        ShardScheduler: ``[(fn, site, kind)]`` with kind "pool" when
        the first argument is the entry-point callable (Executor
        semantics) and "scheduler" when it is a spec."""
        submits = []
        for qualname, fn in self.index.functions.items():
            for site in self.index.calls_of(fn.qualname):
                kind = self._submit_kind(site)
                if kind:
                    submits.append((fn, site, kind))
        return submits

    def _submit_kind(self, site):
        for target in site.targets:
            callee = self.index.functions[target]
            if (callee.name == "submit" and callee.klass
                    and callee.klass.endswith(".ShardScheduler")):
                return "scheduler"
        external = site.external or ""
        if not external.endswith(".submit"):
            return None
        owner = external.rsplit(".", 1)[0]
        if "Executor" in owner or "Pool" in owner:
            return "pool"
        return None

    def _check_unpicklable_submits(self, submits):
        for fn, site, kind in submits:
            node = site.node
            candidates = list(node.args)
            candidates.extend(kw.value for kw in node.keywords)
            for position, arg in enumerate(candidates):
                entry_point = kind == "pool" and position == 0
                problem = self._unpicklable_reason(fn, arg,
                                                  entry_point)
                if problem:
                    self._emit(
                        "dev.unpicklable-submit",
                        "%s submitted to a worker pool; workers can "
                        "only import module-level functions" % problem,
                        fn.module, node=node,
                        block=self._block_of(fn))

    def _unpicklable_reason(self, fn, arg, entry_point):
        if isinstance(arg, ast.Lambda):
            return "lambda"
        if not entry_point:
            return None
        if isinstance(arg, ast.Name):
            nested = "%s.%s" % (fn.qualname, arg.id)
            info = self.index.functions.get(nested)
            if info is not None and info.is_nested:
                return "closure %r" % arg.id
        if isinstance(arg, ast.Attribute):
            receiver = None
            if (isinstance(arg.value, ast.Name)
                    and arg.value.id == "self" and fn.klass):
                receiver = fn.klass
            else:
                receiver = self.index._receiver_type(fn, arg.value)
            if receiver and self.index._method_on(
                    self.index._canonical_type(receiver), arg.attr):
                return "bound method .%s" % arg.attr
        return None

    def _check_worker_global_writes(self, submits):
        roots = set()
        for fn, site, kind in submits:
            if kind != "pool" or not site.node.args:
                continue
            entry = site.node.args[0]
            if isinstance(entry, ast.Name):
                targets, _ = self.index._resolve_bare_name(fn, entry.id)
                roots.update(targets)
            elif isinstance(entry, ast.Attribute):
                dotted = fn.module.resolve_attribute(entry)
                if dotted:
                    targets, _ = self.index._resolve_dotted(dotted)
                    roots.update(targets)
        for qualname in sorted(self.index.transitive_callees(roots)):
            fn = self.index.functions[qualname]
            declared = set()
            for node in walk_scope(fn.body):
                if isinstance(node, ast.Global):
                    declared.update(node.names)
            if not declared:
                continue
            written = set()
            for node in walk_scope(fn.body):
                if isinstance(node, (ast.Assign, ast.AugAssign,
                                     ast.AnnAssign)):
                    targets = (node.targets
                               if isinstance(node, ast.Assign)
                               else [node.target])
                    for target in targets:
                        if (isinstance(target, ast.Name)
                                and target.id in declared):
                            written.add(target.id)
            if written:
                self._emit(
                    "dev.worker-global-write",
                    "writes module global(s) %s and is reachable "
                    "from a pool entry point; persistent workers "
                    "carry this state into the next job"
                    % ", ".join(sorted(written)),
                    fn.module, node=fn.node,
                    block=self._block_of(fn))

    # --- contract rules ----------------------------------------------------------

    def _check_event_handlers(self):
        for info in self.index.classes.values():
            if not self._subscribes(info):
                continue
            for name, qualname in info.methods.items():
                if not name.startswith("on_"):
                    continue
                fn = self.index.functions[qualname]
                params = fn.param_names()
                if len(params) < 2:
                    continue
                event = params[1]
                self._check_handler_mutation(fn, event)

    def _subscribes(self, info):
        seen = set()
        current = info
        while current is not None and current.qualname not in seen:
            seen.add(current.qualname)
            for base in current.bases:
                canonical = self.index._canonical_type(base)
                if (canonical == _EVENT_BASE
                        or base.endswith("EventSubscriber")):
                    return True
            current = self.index._parent_class(current)
        return False

    def _check_handler_mutation(self, fn, event):
        def rooted_in_event(node):
            while isinstance(node, (ast.Attribute, ast.Subscript)):
                node = node.value
            return isinstance(node, ast.Name) and node.id == event

        for node in walk_scope(fn.body):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if (isinstance(target, (ast.Attribute, ast.Subscript))
                        and rooted_in_event(target)):
                    self._emit(
                        "dev.event-handler-mutates",
                        "handler %s writes into its event; "
                        "subscribers observe, they do not edit"
                        % fn.name,
                        fn.module, node=node, block=self._block_of(fn))
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS
                    and rooted_in_event(node.func.value)):
                self._emit(
                    "dev.event-handler-mutates",
                    "handler %s calls %s() on its event; subscribers "
                    "observe, they do not edit"
                    % (fn.name, node.func.attr),
                    fn.module, node=node, block=self._block_of(fn))
