"""``repro devlint`` — the self-hosted determinism & concurrency checker.

Where ``repro lint`` analyzes *guest* assembly, this package analyzes
the ``repro`` Python package itself.  The repo's product claims are
invariants — jobs=1 == jobs=N byte-identical campaigns, engine-free
and injector-salted artifact keys, picklable pure shard entry points,
byte-stable serialization everywhere — and every one of them has so
far been re-proven by hand with bespoke tests.  ``devlint`` makes them
machine-checked: an AST pass framework over every module
(:mod:`.modules`), a package import graph plus a lightweight
intra-package call graph (:mod:`.callgraph`), a taint-style
reachability layer answering "can a nondeterminism source reach a
serialization or artifact-key sink" (:mod:`.taint`), and a rule
registry (:mod:`.rules`) emitting :class:`repro.diagnostics.Finding`
objects with stable ``dev.*`` ids — the same diagnostics frame, text
rendering, JSON rendering, and exit-code policy as ``repro lint`` and
``repro diff``.

Pre-existing, *justified* findings are suppressed individually through
a committed baseline file (``devlint-baseline.json``); see
:mod:`.baseline`.  A baseline entry that no longer matches anything is
*stale* and fails the run, so suppressions cannot outlive the code
they excused.
"""

from .baseline import Baseline, BaselineEntry
from .callgraph import PackageIndex
from .modules import ModuleInfo, discover_package, parse_module
from .rules import DEVLINT_RULES
from .runner import DevlintReport, lint_modules, lint_package

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEVLINT_RULES",
    "DevlintReport",
    "ModuleInfo",
    "PackageIndex",
    "discover_package",
    "lint_modules",
    "lint_package",
    "parse_module",
]
