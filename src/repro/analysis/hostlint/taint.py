"""Taint-style reachability: nondeterminism sources → determinism sinks.

The question every determinism rule reduces to is *"can a value a
rerun would compute differently reach something the campaign
fingerprints, serializes, or keys artifacts by?"*.  Two source
domains:

* ``wallclock`` — ``time.time``/``perf_counter``/``monotonic``/
  ``datetime.now`` and friends.  Fine for progress display; fatal in a
  journal line, an artifact key, or a service status projection that
  tests want to pin.
* ``env`` — ``os.environ``/``os.getenv`` reads.  Artifact keys must be
  engine-free (PR 3/6): the key of a result may depend only on what
  the result *is*, never on which engine/injector knob produced it.

Sinks are the places where bytes become durable or comparable: the
``repro.pipeline.keys`` fingerprint functions, checkpoint journal
appends (``RunDirectory.append_shard``), HTTP response bodies
(``HttpResponse.json``), and raw ``json.dump(s)``.

The analysis is a whole-package fixpoint over three monotone maps —
functions whose *return value* is tainted, class attributes that hold
tainted values (including dataclass ``field(default_factory=<source>)``
declarations and constructor-argument flows), and function *parameters*
that receive tainted arguments at some call site.  Within a function,
propagation is a linear, union-only pass (branches merge, loops run
twice for carried taint) — deliberately path-insensitive: a value that
is tainted on *some* path is a finding.

``repro.obs`` is exempt from source collection: observability is the
one place wall-clock reads are the point.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .callgraph import walk_scope

#: taint domains
WALLCLOCK = "wallclock"
ENV = "env"

#: dotted call targets that introduce taint, by domain
SOURCES = {
    "time.time": WALLCLOCK,
    "time.time_ns": WALLCLOCK,
    "time.perf_counter": WALLCLOCK,
    "time.perf_counter_ns": WALLCLOCK,
    "time.monotonic": WALLCLOCK,
    "time.monotonic_ns": WALLCLOCK,
    "time.process_time": WALLCLOCK,
    "datetime.datetime.now": WALLCLOCK,
    "datetime.datetime.utcnow": WALLCLOCK,
    "datetime.datetime.today": WALLCLOCK,
    "datetime.date.today": WALLCLOCK,
    "os.getenv": ENV,
    "os.environ.get": ENV,
    "os.environ.__getitem__": ENV,
    "os.environb.get": ENV,
}

#: dotted names that are tainted as *values* (no call needed)
SOURCE_VALUES = {
    "os.environ": ENV,
    "os.environb": ENV,
}

#: modules exempt from source collection (observability owns the clock)
EXEMPT_PREFIXES = ("repro.obs",)

#: external sinks: dotted name -> sink kind
EXTERNAL_SINKS = {
    "json.dump": "json",
    "json.dumps": "json",
}

#: package sinks: (module, class or None, function name) -> sink kind
PACKAGE_SINKS = {
    ("repro.pipeline.keys", None, "canonical_json"): "key",
    ("repro.pipeline.keys", None, "digest"): "key",
    ("repro.pipeline.keys", None, "artifact_key"): "key",
    ("repro.pipeline.keys", None, "config_fingerprint"): "key",
    ("repro.pipeline.keys", None, "thresholds_fingerprint"): "key",
    ("repro.pipeline.keys", None, "program_fingerprint"): "key",
    ("repro.pipeline.keys", None, "profile_fingerprint"): "key",
    ("repro.campaign.checkpoint", "RunDirectory", "append_shard"):
        "checkpoint",
    ("repro.service.http", "HttpResponse", "json"): "response",
    ("repro.obs.ledger", "RunLedger", "append"): "ledger",
}


@dataclass(frozen=True)
class SourceSite:
    """One direct read of a nondeterminism source."""

    fn: object  # FunctionInfo (or None for class-body declarations)
    module: object  # ModuleInfo
    node: object  # the Call / Attribute / AnnAssign node
    domain: str
    dotted: str  # what was called/read, e.g. "time.perf_counter"
    deferred: bool = False  # a default_factory reference, not a call


@dataclass(frozen=True)
class SinkFlow:
    """A tainted value reaching a sink call argument."""

    fn: object  # FunctionInfo containing the sink call
    node: object  # the sink ast.Call
    sink: str  # dotted/qualified name of the sink
    kind: str  # "key" | "checkpoint" | "response" | "json"
    domains: frozenset


class TaintAnalysis:
    """Whole-package source→sink reachability over a PackageIndex."""

    def __init__(self, index):
        self.index = index
        self.tainted_returns = {}  # qualname -> frozenset(domains)
        self.tainted_attrs = {}  # (class qualname, attr) -> frozenset
        self.tainted_params = {}  # (qualname, param) -> frozenset
        self.source_sites = []  # [SourceSite], final pass only
        self.sink_flows = []  # [SinkFlow], final pass only
        self._sink_functions = self._resolve_package_sinks()
        self._collecting = False
        self._changed = False
        self._run()

    # --- setup ------------------------------------------------------------------

    def _resolve_package_sinks(self):
        resolved = {}
        for (module, klass, name), kind in PACKAGE_SINKS.items():
            if klass:
                qualname = "%s.%s.%s" % (module, klass, name)
            else:
                qualname = "%s.%s" % (module, name)
            if qualname in self.index.functions:
                resolved[qualname] = kind
        return resolved

    def _seed_class_declarations(self):
        """Dataclass fields declared with a source default_factory are
        tainted from birth: ``field(default_factory=time.time)``."""
        for info in self.index.classes.values():
            module = info.module
            for item in info.node.body:
                if not (isinstance(item, ast.AnnAssign)
                        and isinstance(item.target, ast.Name)
                        and isinstance(item.value, ast.Call)):
                    continue
                func = module.resolve_attribute(item.value.func)
                if func not in ("dataclasses.field", "field"):
                    continue
                for keyword in item.value.keywords:
                    if keyword.arg != "default_factory":
                        continue
                    factory = module.resolve_attribute(keyword.value)
                    domain = SOURCES.get(factory)
                    if domain:
                        self._note_attr(info.qualname, item.target.id,
                                        frozenset([domain]))
                        self._declared_sources.append(SourceSite(
                            fn=None, module=module, node=item,
                            domain=domain, dotted=factory,
                            deferred=True))

    # --- fixpoint ---------------------------------------------------------------

    def _run(self):
        self._declared_sources = []
        self._seed_class_declarations()
        for _ in range(12):  # generous bound; converges in a few rounds
            self._changed = False
            for qualname in self.index.functions:
                _FunctionPass(self, self.index.functions[qualname]).run()
            if not self._changed:
                break
        self._collecting = True
        for qualname in self.index.functions:
            _FunctionPass(self, self.index.functions[qualname]).run()
        self.source_sites.extend(self._declared_sources)
        self.source_sites.sort(key=_site_order)
        self.sink_flows.sort(
            key=lambda flow: (flow.fn.module.relpath, flow.node.lineno,
                              flow.node.col_offset))

    # --- monotone map updates ---------------------------------------------------

    def _note_return(self, qualname, domains):
        self._merge(self.tainted_returns, qualname, domains)

    def _note_attr(self, klass, attr, domains):
        self._merge(self.tainted_attrs, (klass, attr), domains)

    def _note_param(self, qualname, param, domains):
        self._merge(self.tainted_params, (qualname, param), domains)

    def _merge(self, mapping, key, domains):
        if not domains:
            return
        current = mapping.get(key, frozenset())
        merged = current | frozenset(domains)
        if merged != current:
            mapping[key] = merged
            self._changed = True

    def attr_domains(self, klass, attr):
        """Taint of ``<klass instance>.<attr>``, searching base classes."""
        info = self.index.classes.get(klass)
        while info is not None:
            key = (info.qualname, attr)
            if key in self.tainted_attrs:
                return self.tainted_attrs[key]
            info = self.index._parent_class(info)
        return frozenset()

    def is_exempt(self, module_name):
        return any(module_name == prefix
                   or module_name.startswith(prefix + ".")
                   for prefix in EXEMPT_PREFIXES)


def _site_order(site):
    return (site.module.relpath, site.node.lineno, site.node.col_offset)


class _FunctionPass:
    """One union-only propagation pass over one function body."""

    def __init__(self, analysis, fn):
        self.analysis = analysis
        self.fn = fn
        self.env = {}
        self._record = False
        for param in fn.param_names():
            domains = analysis.tainted_params.get((fn.qualname, param))
            if domains:
                self.env[param] = frozenset(domains)

    def run(self):
        # Two sweeps so loop-carried taint (assigned late, used early)
        # settles; the env only grows, so this terminates.  Sources and
        # sinks are recorded on the second sweep only, once the env for
        # this function is complete.
        self._exec(self.fn.body)
        self._record = True
        self._exec(self.fn.body)

    # --- statements -------------------------------------------------------------

    def _exec(self, statements):
        for node in statements:
            self._exec_one(node)

    def _exec_one(self, node):
        if isinstance(node, ast.Assign):
            domains = self._eval(node.value)
            for target in node.targets:
                self._assign(target, domains)
        elif isinstance(node, ast.AugAssign):
            domains = self._eval(node.value) | self._load(node.target)
            self._assign(node.target, domains)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._assign(node.target, self._eval(node.value))
        elif isinstance(node, ast.Return):
            if node.value is not None:
                domains = self._eval(node.value)
                self.analysis._note_return(self.fn.qualname, domains)
        elif isinstance(node, ast.Expr):
            self._eval(node.value)
        elif isinstance(node, ast.If):
            self._eval(node.test)
            self._exec(node.body)
            self._exec(node.orelse)
        elif isinstance(node, ast.For):
            self._assign(node.target, self._eval(node.iter))
            self._exec(node.body)
            self._exec(node.orelse)
        elif isinstance(node, ast.While):
            self._eval(node.test)
            self._exec(node.body)
            self._exec(node.orelse)
        elif isinstance(node, ast.With):
            for item in node.items:
                domains = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, domains)
            self._exec(node.body)
        elif isinstance(node, ast.Try):
            self._exec(node.body)
            for handler in node.handlers:
                self._exec(handler.body)
            self._exec(node.orelse)
            self._exec(node.finalbody)
        elif isinstance(node, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass  # separate FunctionInfo/ClassInfo records
        # Import/Pass/Break/...: nothing flows

    def _assign(self, target, domains):
        if isinstance(target, ast.Name):
            self._merge_env(target.id, domains)
        elif isinstance(target, ast.Attribute):
            if (isinstance(target.value, ast.Name)
                    and target.value.id == "self" and self.fn.klass):
                self.analysis._note_attr(self.fn.klass, target.attr,
                                         domains)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, domains)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, domains)
        # Subscript targets: container element taint folds into nothing
        # we can name; sinks re-derive through the container variable.

    def _merge_env(self, name, domains):
        if domains:
            self.env[name] = self.env.get(name, frozenset()) | domains

    def _load(self, target):
        if isinstance(target, ast.Name):
            return self.env.get(target.id, frozenset())
        return frozenset()

    # --- expressions ------------------------------------------------------------

    def _eval(self, expr):
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id, frozenset())
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr)
        if isinstance(expr, ast.Subscript):
            # os.environ["X"] taints through the Attribute evaluation.
            domains = self._eval(expr.value)
            if isinstance(expr.slice, ast.expr):
                domains = domains | self._eval(expr.slice)
            return domains
        if isinstance(expr, ast.Dict):
            domains = frozenset()
            for key in expr.keys:
                if key is not None:
                    domains |= self._eval(key)
            for value in expr.values:
                domains |= self._eval(value)
            return domains
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            domains = frozenset()
            for element in expr.elts:
                domains |= self._eval(element)
            return domains
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, ast.Await):
            return self._eval(expr.value)
        if isinstance(expr, ast.NamedExpr):
            domains = self._eval(expr.value)
            self._assign(expr.target, domains)
            return domains
        if isinstance(expr, ast.Lambda):
            return frozenset()  # deferred body; submit rules handle these
        if isinstance(expr, (ast.Constant,)):
            return frozenset()
        # BinOp/BoolOp/Compare/IfExp/JoinedStr/FormattedValue/
        # comprehensions/...: union over child expressions.
        domains = frozenset()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                domains |= self._eval(child)
            elif isinstance(child, ast.comprehension):
                self._assign(child.target, self._eval(child.iter))
                for condition in child.ifs:
                    self._eval(condition)
        return domains

    def _eval_attribute(self, expr):
        dotted = self.fn.module.resolve_attribute(expr)
        if dotted in SOURCE_VALUES:
            self._record_source(expr, SOURCE_VALUES[dotted], dotted)
            return frozenset([SOURCE_VALUES[dotted]])
        domains = self._eval(expr.value)
        receiver = self.analysis.index._receiver_type(self.fn,
                                                      expr.value)
        if receiver:
            domains |= self.analysis.attr_domains(
                self.analysis.index._canonical_type(receiver),
                expr.attr)
        return domains

    def _eval_call(self, node):
        analysis = self.analysis
        index = analysis.index
        site = index.resolve_call(self.fn, node)
        arg_domains = [self._eval(arg) for arg in node.args]
        kw_domains = {}
        all_args = frozenset()
        for domains in arg_domains:
            all_args |= domains
        for keyword in node.keywords:
            domains = self._eval(keyword.value)
            all_args |= domains
            if keyword.arg is not None:
                kw_domains[keyword.arg] = domains
        self._propagate_into_callees(site, node, arg_domains, kw_domains)

        result = frozenset()
        if site.external in SOURCES:
            result |= frozenset([SOURCES[site.external]])
            self._record_source(node, SOURCES[site.external],
                                site.external)
        for target in site.targets:
            result |= analysis.tainted_returns.get(target, frozenset())
        if not site.targets or site.external in EXTERNAL_SINKS:
            # External/unresolved calls pass taint through their
            # arguments (round(x), str(x), json.dumps(payload), ...).
            result |= all_args
        self._maybe_record_sink(site, node, all_args)
        return result

    def _propagate_into_callees(self, site, node, arg_domains,
                                kw_domains):
        index = self.analysis.index
        for target in site.targets:
            callee = index.functions[target]
            params = callee.param_names()
            if callee.klass is not None and params:
                params = params[1:]  # bound self/cls
            for position, domains in enumerate(arg_domains):
                if position < len(params):
                    self.analysis._note_param(target, params[position],
                                              domains)
            for name, domains in kw_domains.items():
                if name in params:
                    self.analysis._note_param(target, name, domains)
        # Constructing a package class: arguments land in attributes.
        external = site.external
        if external in index.classes:
            info = index.classes[external]
            fields = self._ctor_fields(info)
            for position, domains in enumerate(arg_domains):
                if position < len(fields):
                    self.analysis._note_attr(info.qualname,
                                             fields[position], domains)
            for name, domains in kw_domains.items():
                self.analysis._note_attr(info.qualname, name, domains)

    def _ctor_fields(self, info):
        init = info.methods.get("__init__")
        if init:
            params = self.analysis.index.functions[init].param_names()
            return params[1:] if params else []
        return info.fields  # dataclass declaration order

    def _maybe_record_sink(self, site, node, all_args):
        if not (self._record and self.analysis._collecting
                and all_args):
            return
        kind = None
        sink = None
        for target in site.targets:
            if target in self.analysis._sink_functions:
                kind = self.analysis._sink_functions[target]
                sink = target
                break
        if kind is None and site.external in EXTERNAL_SINKS:
            kind = EXTERNAL_SINKS[site.external]
            sink = site.external
        if kind is None:
            return
        self.analysis.sink_flows.append(SinkFlow(
            fn=self.fn, node=node, sink=sink, kind=kind,
            domains=all_args))

    def _record_source(self, node, domain, dotted):
        if not (self._record and self.analysis._collecting):
            return
        if self.analysis.is_exempt(self.fn.module.name):
            return
        self.analysis.source_sites.append(SourceSite(
            fn=self.fn, module=self.fn.module, node=node,
            domain=domain, dotted=dotted))


def sorted_sink_targets(index):
    """The resolved in-package sink qualnames (for docs/tests)."""
    resolved = TaintAnalysis.__new__(TaintAnalysis)
    resolved.index = index
    return sorted(resolved._resolve_package_sinks())
