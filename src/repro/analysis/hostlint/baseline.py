"""The committed suppression file: ``devlint-baseline.json``.

A baseline entry excuses exactly one pre-existing finding, and must
say *why* (``justification`` is required — an empty one fails the
load).  Matching is by (rule, file, block, snippet): the line number
is recorded for humans but ignored for matching, so reflowing a file
does not invalidate its baseline; changing the offending line (or the
function it lives in) does.

Two failure directions, both deliberate:

* a finding with no entry is **unbaselined** — the run fails;
* an entry with no finding is **stale** — the run also fails, so a
  suppression cannot outlive the code it excused.  Fixing a finding
  means deleting its entry in the same commit.

Entries suppress one-for-one: two identical findings need two
entries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .modules import HostlintError

SCHEMA = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One suppressed finding, with its reason."""

    rule: str
    file: str  # package-relative path, e.g. "repro/service/jobs.py"
    block: str  # enclosing function ("" for module/class level)
    snippet: str  # the offending line, stripped
    line: int  # informational; not used for matching
    justification: str

    @property
    def key(self):
        return (self.rule, self.file, self.block, self.snippet)

    @classmethod
    def from_finding(cls, finding, justification):
        return cls(rule=finding.rule, file=finding.source,
                   block=finding.block, snippet=finding.snippet,
                   line=finding.span.start if finding.span else 0,
                   justification=justification)

    def to_dict(self):
        return {
            "rule": self.rule,
            "file": self.file,
            "block": self.block,
            "snippet": self.snippet,
            "line": self.line,
            "justification": self.justification,
        }

    def describe(self):
        return "%s:%d: [%s] %s" % (self.file, self.line, self.rule,
                                   self.snippet or self.block)


@dataclass
class Baseline:
    """An ordered set of suppression entries."""

    entries: list = field(default_factory=list)

    @classmethod
    def load(cls, path):
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as error:
            raise HostlintError("cannot read baseline %s: %s"
                                % (path, error)) from None
        except ValueError as error:
            raise HostlintError("baseline %s is not valid JSON: %s"
                                % (path, error)) from None
        return cls.from_dict(payload, origin=path)

    @classmethod
    def from_dict(cls, payload, origin="<baseline>"):
        if payload.get("schema") != SCHEMA:
            raise HostlintError(
                "baseline %s has schema %r; this checker expects %d"
                % (origin, payload.get("schema"), SCHEMA))
        entries = []
        for position, raw in enumerate(payload.get("entries", [])):
            justification = str(raw.get("justification", "")).strip()
            if not justification:
                raise HostlintError(
                    "baseline %s entry %d has no justification; every "
                    "suppression must say why" % (origin, position))
            entries.append(BaselineEntry(
                rule=str(raw.get("rule", "")),
                file=str(raw.get("file", "")),
                block=str(raw.get("block", "")),
                snippet=str(raw.get("snippet", "")),
                line=int(raw.get("line", 0)),
                justification=justification))
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings, justification):
        """Suppress every finding in one sweep (``--write-baseline``).

        All entries get the same placeholder ``justification``; the
        point of the committed file is that a human replaces each one
        with the real reason before review.
        """
        return cls(entries=[BaselineEntry.from_finding(f, justification)
                            for f in findings])

    def to_dict(self):
        ordered = sorted(self.entries,
                         key=lambda e: (e.file, e.line, e.rule,
                                        e.block, e.snippet))
        return {
            "schema": SCHEMA,
            "entries": [entry.to_dict() for entry in ordered],
        }

    def to_json(self):
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def save(self, path):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def apply(self, findings):
        """Split ``findings`` against this baseline.

        Returns ``(unbaselined, baselined, stale_entries)`` where each
        entry suppresses at most one finding.
        """
        budget = {}
        for entry in self.entries:
            budget.setdefault(entry.key, []).append(entry)
        unbaselined = []
        baselined = []
        for finding in findings:
            key = (finding.rule, finding.source, finding.block,
                   finding.snippet)
            remaining = budget.get(key)
            if remaining:
                remaining.pop(0)
                baselined.append(finding)
            else:
                unbaselined.append(finding)
        stale = [entry for leftovers in budget.values()
                 for entry in leftovers]
        stale.sort(key=lambda e: (e.file, e.line, e.rule))
        return unbaselined, baselined, stale
