"""Orchestration: discover → index → taint → rules → baseline → report.

:class:`DevlintReport` follows the same to_text/to_json/exit_code
contract as ``LintReport`` and ``DiffSetReport``, so the CLI renders
all three through :func:`repro.diagnostics.emit_report`.  The gate is
stricter than ``repro lint``'s, though: *any* unbaselined finding —
info included — and any stale baseline entry is a violation.  New code
either complies, or its author writes down why not.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ...diagnostics import (
    EXIT_CLEAN,
    EXIT_VIOLATION,
    Severity,
    exit_code_for,
    format_findings_text,
    severity_counts,
)
from .baseline import Baseline
from .callgraph import PackageIndex
from .modules import discover_package
from .rules import DEVLINT_RULES, run_rules
from .taint import TaintAnalysis

SCHEMA = 1


@dataclass
class DevlintReport:
    """Devlint results for one package tree, split against a baseline."""

    source: str  # what was analyzed, e.g. "src/repro"
    findings: list = field(default_factory=list)  # unbaselined
    baselined: list = field(default_factory=list)
    stale: list = field(default_factory=list)  # BaselineEntry objects
    modules: int = 0

    @property
    def clean(self):
        return not self.findings and not self.stale

    @property
    def exit_code(self):
        # Unbaselined findings of any severity gate; so do stale
        # suppressions — a baseline entry matching nothing excuses
        # nothing and must be deleted.
        if self.stale:
            return EXIT_VIOLATION
        return exit_code_for(self.findings, gate=Severity.INFO)

    def counts(self):
        return severity_counts(self.findings)

    def to_text(self):
        lines = [format_findings_text(self.findings,
                                      source=self.source)]
        lines.append("%d module(s) analyzed, %d finding(s) baselined"
                     % (self.modules, len(self.baselined)))
        if self.stale:
            lines.append("stale baseline entries (fixed code keeps no "
                         "suppressions — delete these):")
            for entry in self.stale:
                lines.append("  %s" % entry.describe())
        return "\n".join(lines)

    def to_json(self):
        payload = {
            "schema": SCHEMA,
            "source": self.source,
            "modules": self.modules,
            "findings": [finding.to_dict()
                         for finding in self.findings],
            "baselined": [finding.to_dict()
                          for finding in self.baselined],
            "stale_baseline": [entry.to_dict()
                               for entry in self.stale],
            "summary": self.counts(),
            "exit_code": self.exit_code,
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def all_findings(self):
        """Baselined and not, in one deterministic list."""
        merged = list(self.findings) + list(self.baselined)
        merged.sort(key=lambda f: (
            f.source, f.span.start if f.span else 0, f.rule,
            f.message))
        return merged


def lint_modules(modules, baseline=None, source="repro"):
    """Run every ``dev.*`` rule over parsed modules."""
    index = PackageIndex(modules)
    taint = TaintAnalysis(index)
    findings = run_rules(index, taint=taint)
    if baseline is None:
        baseline = Baseline()
    else:
        # An entry for a file outside this scan is neither matched nor
        # stale; partial scans must not condemn the rest of the
        # baseline.
        scanned = {module.relpath for module in modules}
        baseline = Baseline(entries=[entry for entry in baseline.entries
                                     if entry.file in scanned])
    unbaselined, baselined, stale = baseline.apply(findings)
    return DevlintReport(source=source, findings=unbaselined,
                         baselined=baselined, stale=stale,
                         modules=len(modules))


def lint_package(root=None, package="repro", baseline=None,
                 source=None):
    """Discover and lint an installed or checked-out package tree."""
    modules = discover_package(root=root, package=package)
    return lint_modules(modules, baseline=baseline,
                        source=source or root or package)
