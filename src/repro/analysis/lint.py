"""``repro lint`` — static diagnostics over assembly sources and programs.

Rules fall in three buckets:

* **assembler rules** (``asm.*``) — syntax/structure problems the
  assembler itself reports; :func:`lint_source` converts them into the
  same structured findings as everything else;
* **error rules** (``lint.*``, severity *error*) — constructs that are
  guaranteed or overwhelmingly likely to fault or hang at runtime
  (stores into the instruction region, misaligned word accesses,
  addressing modes the CPU rejects, loops with no way out);
* **warning/info rules** — likely-bug patterns that still execute
  (dead stores, unreachable code, conditional branches with no flag
  setter in sight, data objects nothing references).

CI gates on errors: every bundled kernel, example, and the case study
must lint clean at error severity (see ``tests/test_lint.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..diagnostics import (
    Finding,
    Severity,
    format_findings_json,
    format_findings_text,
    severity_counts,
    worst_severity,
)
from ..errors import AssemblyError
from ..isa.instructions import Mnemonic
from .loops import loop_exit_edges, loop_has_dynamic_exit
from .staticprofile import ProgramAnalysis

#: rule id -> (severity, one-line description); the public catalog
LINT_RULES = {
    "lint.missing-addressing-mode": (
        Severity.ERROR,
        "str/strb/ldrb without an addressing mode faults at runtime"),
    "lint.store-to-text": (
        Severity.ERROR,
        "store into the instruction region (self-modifying or bad address)"),
    "lint.out-of-region": (
        Severity.ERROR,
        "access to an address outside text, data, and stack"),
    "lint.misaligned-access": (
        Severity.ERROR,
        "word access to an address that is not 4-byte aligned"),
    "lint.no-flag-setter": (
        Severity.ERROR,
        "conditional instruction no flag-setting instruction can reach"),
    "lint.infinite-loop": (
        Severity.ERROR,
        "loop with no exit edge and no halt/return in its body"),
    "lint.fallthrough-off-end": (
        Severity.ERROR,
        "control flow can run past the end of the text image"),
    "lint.bad-call-target": (
        Severity.ERROR,
        "bl target is not an instruction address"),
    "lint.unreachable-code": (
        Severity.WARNING,
        "instructions no flow function can reach"),
    "lint.dead-store": (
        Severity.WARNING,
        "register written but never read before the next write"),
    "lint.uninitialized-register": (
        Severity.WARNING,
        "register read before any definition on some path from entry"),
    "lint.unused-data": (
        Severity.INFO,
        "data object no instruction references"),
}


@dataclass
class LintReport:
    """Structured lint results for one program or source file."""

    source: str
    findings: list = field(default_factory=list)
    #: set when the input failed to assemble (no program to analyze)
    assembly_failed: bool = False

    @property
    def errors(self):
        return [finding for finding in self.findings
                if finding.severity is Severity.ERROR]

    @property
    def warnings(self):
        return [finding for finding in self.findings
                if finding.severity is Severity.WARNING]

    @property
    def has_errors(self):
        return bool(self.errors)

    @property
    def exit_code(self):
        """0 clean, 1 any error-severity finding (warnings pass)."""
        from ..diagnostics import exit_code_for
        return exit_code_for(self.findings)

    def worst(self):
        return worst_severity(self.findings)

    def counts(self):
        return severity_counts(self.findings)

    def to_text(self):
        return format_findings_text(self.findings, source=self.source)

    def to_json(self):
        return format_findings_json(self.findings, source=self.source)


def lint_source(text, name="<source>"):
    """Assemble ``text`` and lint the result.

    Assembly errors become findings instead of exceptions, so callers
    (the CLI, CI) handle broken and suspicious sources uniformly.
    """
    from ..isa.assembler import assemble
    try:
        program = assemble(text, name=name)
    except AssemblyError as error:
        report = LintReport(source=name, assembly_failed=True)
        report.findings.append(error.to_finding(source=name))
        return report
    return lint_program(program, source=name)


def lint_program(program, analysis=None, source=None):
    """Run every lint rule over an assembled program."""
    if analysis is None:
        analysis = ProgramAnalysis(program)
    linter = _Linter(program, analysis,
                     source or program.source_name or "<program>")
    return linter.run()


class _Linter:
    def __init__(self, program, analysis, source):
        self.program = program
        self.analysis = analysis
        self.source = source
        self.report = LintReport(source=source)
        self._seen = set()

    # --- plumbing ---------------------------------------------------------

    def _emit(self, rule, message, address=None, instruction=None,
              span=None, snippet=""):
        severity = LINT_RULES[rule][0]
        block = ""
        if address is not None:
            code_block = self.program.code_block_at(address)
            if code_block is not None:
                block = code_block.name
        if instruction is not None:
            if span is None:
                span = instruction.span
            if not snippet:
                snippet = instruction.source_text.strip()
        key = (rule, address, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.report.findings.append(Finding(
            rule=rule, severity=severity, message=message, span=span,
            source=self.source, snippet=snippet, block=block))

    def run(self):
        self._check_addressing_modes()
        self._check_memory_targets()
        self._check_call_targets()
        self._check_control_flow()
        self._check_dataflow()
        self._check_unreachable()
        self._check_unused_data()
        self.report.findings.sort(
            key=lambda f: (f.span.start if f.span else 0,
                           -f.severity.rank, f.rule, f.message))
        return self.report

    # --- instruction-shape rules ------------------------------------------

    def _check_addressing_modes(self):
        for address, instruction in self.program.iter_instructions():
            if instruction.mnemonic in (Mnemonic.STR, Mnemonic.STRB,
                                        Mnemonic.LDRB):
                if len(instruction.operands) == 2:
                    self._emit(
                        "lint.missing-addressing-mode",
                        "%s needs '[base]' or '[base, #offset]'; this "
                        "form raises an illegal-instruction fault"
                        % instruction.mnemonic.value,
                        address=address, instruction=instruction)

    # --- provable memory-target rules -------------------------------------

    def _check_memory_targets(self):
        program = self.program
        stack_low = program.stack_top - program.stack_size
        constprop = self.analysis.constprop
        cfg = self.analysis.cfg
        for entry, function in cfg.functions.items():
            for start in function.blocks:
                for address, instruction in cfg.blocks[start].instructions:
                    if instruction.mnemonic not in (
                            Mnemonic.LDR, Mnemonic.LDRB,
                            Mnemonic.STR, Mnemonic.STRB):
                        continue
                    if len(instruction.operands) != 3:
                        continue
                    constant, _ = constprop.address_regions(
                        function, start, address, instruction)
                    if constant is None:
                        continue
                    self._check_constant_target(address, instruction,
                                                constant, stack_low)

    def _check_constant_target(self, address, instruction, target,
                               stack_low):
        program = self.program
        word = instruction.mnemonic in (Mnemonic.LDR, Mnemonic.STR)
        in_text = program.text_base <= target < program.text_end
        in_data = program.data_base <= target < program.data_end
        in_stack = stack_low <= target < program.stack_top
        if instruction.is_store and in_text:
            self._emit(
                "lint.store-to-text",
                "store to 0x%05x inside the instruction region" % target,
                address=address, instruction=instruction)
        elif not (in_text or in_data or in_stack):
            self._emit(
                "lint.out-of-region",
                "access to unmapped address 0x%05x" % target,
                address=address, instruction=instruction)
        if word and target % 4:
            self._emit(
                "lint.misaligned-access",
                "word access to unaligned address 0x%05x" % target,
                address=address, instruction=instruction)

    # --- control-flow rules ------------------------------------------------

    def _check_call_targets(self):
        cfg = self.analysis.cfg
        for block_start, target in cfg.call_sites:
            block = cfg.blocks[block_start]
            if target is None or (
                    self.program.instruction_at(target) is None):
                self._emit(
                    "lint.bad-call-target",
                    "bl to 0x%05x, which holds no instruction"
                    % (target if target is not None else 0),
                    address=block.terminator_address,
                    instruction=block.terminator)

    def _check_control_flow(self):
        cfg = self.analysis.cfg
        reported_falloff = set()
        for entry, function in cfg.functions.items():
            for loop in function.loops:
                if loop_exit_edges(cfg, loop):
                    continue
                if loop_has_dynamic_exit(cfg, loop):
                    continue
                header = cfg.blocks[loop.header]
                self._emit(
                    "lint.infinite-loop",
                    "loop at 0x%05x has no exit edge and never "
                    "halts or returns" % loop.header,
                    address=loop.header,
                    instruction=header.instructions[0][1])
            for start in function.blocks:
                block = cfg.blocks[start]
                if block.falls_off_end and start not in reported_falloff:
                    reported_falloff.add(start)
                    self._emit(
                        "lint.fallthrough-off-end",
                        "control continues past 0x%05x, beyond the "
                        "last instruction" % block.terminator_address,
                        address=block.terminator_address,
                        instruction=block.terminator)

    # --- dataflow rules ----------------------------------------------------

    def _check_dataflow(self):
        from ..isa.registers import LR, PC, SP, register_name
        from .dataflow import analyze_function
        cfg = self.analysis.cfg
        for entry, function in cfg.functions.items():
            initialized = {SP, LR, PC} if entry == cfg.entry else None
            flow = analyze_function(cfg, function,
                                    initialized_at_entry=initialized)
            for address in flow.unset_flag_uses:
                instruction = self.program.instruction_at(address)
                self._emit(
                    "lint.no-flag-setter",
                    "conditional '%s' but no cmp/cmn/tst/S-suffixed "
                    "instruction can reach it"
                    % instruction.mnemonic.value,
                    address=address, instruction=instruction)
            for address, register in flow.dead_stores:
                instruction = self.program.instruction_at(address)
                self._emit(
                    "lint.dead-store",
                    "%s is written but never read before being "
                    "overwritten or dropped" % register_name(register),
                    address=address, instruction=instruction)
            if entry != cfg.entry:
                continue  # callee "uninitialized" reads are caller state
            for address, register in flow.uninit_uses:
                instruction = self.program.instruction_at(address)
                self._emit(
                    "lint.uninitialized-register",
                    "%s may be read before it is written"
                    % register_name(register),
                    address=address, instruction=instruction)

    # --- coverage rules ----------------------------------------------------

    def _check_unreachable(self):
        covered = self.analysis.cfg.reachable_addresses()
        addresses = sorted(self.program.instructions)
        run = []
        for address in addresses:
            if address in covered:
                self._flush_unreachable(run)
                run = []
            else:
                run.append(address)
        self._flush_unreachable(run)

    def _flush_unreachable(self, run):
        if not run:
            return
        first = self.program.instructions[run[0]]
        last = self.program.instructions[run[-1]]
        span = first.span
        if span is not None and last.span is not None:
            span = span.union(last.span)
        words = len(run)
        self._emit(
            "lint.unreachable-code",
            "%d instruction%s at 0x%05x cannot be reached"
            % (words, "" if words == 1 else "s", run[0]),
            address=run[0], span=span,
            snippet=first.source_text.strip())

    def _check_unused_data(self):
        referenced = set()
        for _, instruction in self.program.iter_instructions():
            for operand in instruction.operands:
                if operand.is_immediate and isinstance(operand.value, int):
                    referenced.add(operand.value)
        for obj in self.program.data_objects:
            if any(obj.start <= value < obj.start + obj.size
                   for value in referenced):
                continue
            self._emit(
                "lint.unused-data",
                "data object %r (%d bytes at 0x%05x) is never "
                "referenced by an instruction"
                % (obj.name, obj.size, obj.start))
