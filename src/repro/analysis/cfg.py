"""Control-flow graph construction over assembled programs.

The CFG is built at two granularities:

* **basic blocks** — maximal straight-line instruction runs, program
  wide, with intra-procedural edges (fallthrough, branch taken) and a
  separate **call edge** set for ``bl``;
* **flow functions** — one per call-graph entry (the program entry plus
  every ``bl`` target and every ``.func`` start): the subgraph of basic
  blocks reachable from the entry without following call edges,
  together with its dominator tree and natural loops.

``bx``/``pop {... pc}``/``mov pc, ...`` terminate a function (return or
indirect jump — the analyzer does not chase indirect targets), ``halt``
terminates the program.  A conditional return/halt keeps its
fallthrough edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instructions import INSTRUCTION_BYTES, Mnemonic, Condition
from ..isa.registers import PC

#: registers an ARM-style call may clobber (plus LR and the flags)
CALL_CLOBBERED = frozenset({0, 1, 2, 3, 12})
#: argument registers a call is assumed to read
CALL_ARGUMENTS = frozenset({0, 1, 2, 3})


def writes_pc(instruction):
    """True when the instruction writes the program counter directly."""
    from ..isa.instructions import WRITES_FIRST_OPERAND
    if instruction.mnemonic in WRITES_FIRST_OPERAND and instruction.operands:
        op = instruction.operands[0]
        return op.is_register and op.value == PC
    if instruction.mnemonic is Mnemonic.POP:
        return PC in instruction.operands[0].value
    return False


def is_return(instruction):
    """True for instructions that leave the current function."""
    return instruction.mnemonic is Mnemonic.BX or writes_pc(instruction)


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions."""

    start: int
    instructions: list  # [(address, Instruction)] in address order
    successors: list = field(default_factory=list)  # block start addrs
    predecessors: list = field(default_factory=list)
    call_target: int = None  # bl target when the terminator is a call
    falls_off_end: bool = False  # control can run past the text image

    @property
    def end(self):
        """One past the last instruction address."""
        return self.instructions[-1][0] + INSTRUCTION_BYTES

    @property
    def terminator(self):
        return self.instructions[-1][1]

    @property
    def terminator_address(self):
        return self.instructions[-1][0]

    @property
    def span(self):
        first = self.instructions[0][1].span
        last = self.instructions[-1][1].span
        if first is None:
            return last
        return first.union(last)

    def __len__(self):
        return len(self.instructions)


@dataclass
class Loop:
    """One natural loop: header plus body (header included)."""

    header: int  # block start address
    body: frozenset  # block start addresses, header included
    latches: tuple  # blocks with a back edge to the header
    #: inferred header-execution bounds (filled by repro.analysis.loops):
    #: lo is a sound lower bound, hi a sound upper bound or None when
    #: the trip count could not be bounded
    trip_lo: int = 1
    trip_hi: int = None
    trip_estimate: int = None  # point estimate for the static profiler

    def contains(self, block_start):
        return block_start in self.body

    @property
    def depth_key(self):
        return len(self.body)


@dataclass
class FlowFunction:
    """The intra-procedural subgraph reachable from one entry."""

    entry: int
    name: str
    blocks: tuple  # block start addresses, sorted
    exit_blocks: tuple  # blocks that return/halt/fall off the image
    dominators: dict  # block start -> frozenset of dominating block starts
    loops: list  # Loop, innermost-last per nesting chain
    irreducible: bool = False  # a back-ish edge whose target doesn't dominate

    def loops_containing(self, block_start):
        """Loops containing the block, outermost first."""
        found = [loop for loop in self.loops if loop.contains(block_start)]
        found.sort(key=lambda loop: -loop.depth_key)
        return found

    def dominates(self, a, b):
        """True when block ``a`` dominates block ``b``."""
        return a in self.dominators.get(b, frozenset())


@dataclass
class ControlFlowGraph:
    """Program-wide CFG: basic blocks, call graph, flow functions."""

    program: object
    blocks: dict  # start address -> BasicBlock
    functions: dict  # entry address -> FlowFunction
    call_sites: list  # [(block start, call target address)]
    entry: int

    def block_order(self):
        return sorted(self.blocks)

    def block_at(self, address):
        """The basic block containing an instruction address, or None."""
        for start in sorted(self.blocks, reverse=True):
            if start <= address:
                block = self.blocks[start]
                if address < block.end:
                    return block
                return None
        return None

    def function_of_block(self, block_start):
        """Flow functions whose body contains the block."""
        return [fn for fn in self.functions.values()
                if block_start in fn.blocks]

    def reachable_addresses(self):
        """Instruction addresses covered by any flow function."""
        covered = set()
        for fn in self.functions.values():
            for start in fn.blocks:
                for address, _ in self.blocks[start].instructions:
                    covered.add(address)
        return covered


def _branch_target(instruction):
    if instruction.mnemonic in (Mnemonic.B, Mnemonic.BL):
        op = instruction.operands[0]
        if op.is_immediate:
            return op.value
    return None


def _ends_block(instruction):
    if instruction.mnemonic in (Mnemonic.B, Mnemonic.BL, Mnemonic.BX,
                                Mnemonic.HALT):
        return True
    return writes_pc(instruction)


def build_cfg(program):
    """Construct the :class:`ControlFlowGraph` for an assembled program."""
    addresses = sorted(program.instructions)
    if not addresses:
        return ControlFlowGraph(program=program, blocks={}, functions={},
                                call_sites=[], entry=program.entry)
    address_set = set(addresses)

    # --- leaders ----------------------------------------------------------
    leaders = {addresses[0], program.entry}
    for block in program.code_blocks:
        if block.start in address_set:
            leaders.add(block.start)
    for address in addresses:
        instruction = program.instructions[address]
        target = _branch_target(instruction)
        if target is not None and target in address_set:
            leaders.add(target)
        if _ends_block(instruction):
            follower = address + INSTRUCTION_BYTES
            if follower in address_set:
                leaders.add(follower)

    # --- blocks -----------------------------------------------------------
    blocks = {}
    current = None
    for address in addresses:
        if address in leaders or current is None:
            current = BasicBlock(start=address, instructions=[])
            blocks[address] = current
        current.instructions.append((address, program.instructions[address]))
        if _ends_block(program.instructions[address]):
            current = None

    # --- edges ------------------------------------------------------------
    call_sites = []
    for block in blocks.values():
        terminator = block.terminator
        follower = block.end
        mnemonic = terminator.mnemonic
        conditional = terminator.condition is not Condition.AL
        fallthrough = False
        if mnemonic is Mnemonic.B:
            target = _branch_target(terminator)
            if target in address_set:
                block.successors.append(target)
            fallthrough = conditional
        elif mnemonic is Mnemonic.BL:
            target = _branch_target(terminator)
            block.call_target = target
            call_sites.append((block.start, target))
            fallthrough = True  # control returns after the call
        elif mnemonic is Mnemonic.HALT or is_return(terminator):
            fallthrough = conditional
        else:
            fallthrough = True  # block ended because the next addr is a leader
        if fallthrough:
            if follower in address_set:
                if follower not in block.successors:
                    block.successors.append(follower)
            else:
                block.falls_off_end = True
    for block in blocks.values():
        for successor in block.successors:
            blocks[successor].predecessors.append(block.start)

    # --- flow functions ---------------------------------------------------
    entries = {}
    if program.entry in address_set:
        entries[program.entry] = _entry_name(program, program.entry)
    for _, target in call_sites:
        if target in address_set and target not in entries:
            entries[target] = _entry_name(program, target)
    for code_block in program.code_blocks:
        if code_block.start in address_set and code_block.start not in entries:
            entries[code_block.start] = code_block.name

    functions = {}
    for entry, name in entries.items():
        functions[entry] = _build_function(blocks, entry, name)

    return ControlFlowGraph(program=program, blocks=blocks,
                            functions=functions, call_sites=call_sites,
                            entry=program.entry)


def _entry_name(program, address):
    for name, value in sorted(program.symbols.items()):
        if value == address:
            return name
    return "fn_0x%05x" % address


def _build_function(blocks, entry, name):
    # reachable set, intra-procedural edges only
    body = []
    seen = set()
    stack = [entry]
    while stack:
        start = stack.pop()
        if start in seen:
            continue
        seen.add(start)
        body.append(start)
        for successor in blocks[start].successors:
            if successor not in seen:
                stack.append(successor)
    body.sort()
    body_set = frozenset(body)

    exit_blocks = []
    for start in body:
        block = blocks[start]
        terminator = block.terminator
        returns = (terminator.mnemonic is Mnemonic.HALT
                   or is_return(terminator))
        if returns or block.falls_off_end:
            exit_blocks.append(start)

    dominators = _compute_dominators(blocks, entry, body, body_set)

    loops, irreducible = _find_loops(blocks, entry, body, body_set,
                                     dominators)
    return FlowFunction(entry=entry, name=name, blocks=tuple(body),
                        exit_blocks=tuple(exit_blocks),
                        dominators=dominators, loops=loops,
                        irreducible=irreducible)


def _compute_dominators(blocks, entry, body, body_set):
    """Iterative dataflow dominator computation (small graphs)."""
    full = frozenset(body)
    dominators = {start: full for start in body}
    dominators[entry] = frozenset({entry})
    changed = True
    while changed:
        changed = False
        for start in body:
            if start == entry:
                continue
            predecessor_sets = [dominators[p]
                                for p in blocks[start].predecessors
                                if p in body_set]
            if predecessor_sets:
                new = frozenset.intersection(*predecessor_sets) | {start}
            else:
                new = frozenset({start})
            if new != dominators[start]:
                dominators[start] = new
                changed = True
    return dominators


def _find_loops(blocks, entry, body, body_set, dominators):
    """Natural loops from back edges (tail -> dominating header).

    The graph is *irreducible* when a DFS retreating edge targets a
    block that does not dominate its source (a jump into the middle of
    a loop); trip-count inference refuses such functions.
    """
    irreducible = False
    on_stack, finished = set(), set()
    if entry is not None:
        # iterative DFS from the function entry, tracking the gray set
        work = [(entry, iter(blocks[entry].successors))]
        on_stack.add(entry)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in body_set:
                    continue
                if successor in on_stack:
                    if successor not in dominators[node]:
                        irreducible = True
                elif successor not in finished:
                    work.append(
                        (successor, iter(blocks[successor].successors)))
                    on_stack.add(successor)
                    advanced = True
                    break
            if not advanced:
                work.pop()
                on_stack.discard(node)
                finished.add(node)

    loop_map = {}  # header -> (set of body blocks, list of latches)
    for start in body:
        for successor in blocks[start].successors:
            if successor not in body_set:
                continue
            if successor in dominators[start]:
                # back edge start -> successor
                members, latches = loop_map.setdefault(
                    successor, ({successor}, []))
                latches.append(start)
                # walk predecessors from the latch, stopping at the header
                stack = [start]
                while stack:
                    node = stack.pop()
                    if node in members:
                        continue
                    members.add(node)
                    for predecessor in blocks[node].predecessors:
                        if predecessor in body_set:
                            stack.append(predecessor)
    loops = [Loop(header=header, body=frozenset(members),
                  latches=tuple(sorted(latches)))
             for header, (members, latches) in loop_map.items()]
    loops.sort(key=lambda loop: loop.depth_key)
    return loops, irreducible
