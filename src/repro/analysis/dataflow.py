"""Classic dataflow over the CFG: use/def sets, reaching definitions,
liveness, def-use chains, plus the two forward passes the lint rules
need (must-initialized registers and may-reach flag setters).

The condition flags are modelled as one pseudo-register ``FLAGS``.  A
``bl`` is assumed to follow the calling convention: it reads the
argument registers, clobbers r0–r3/r12/lr and the flags, and preserves
r4–r11/sp.  Returns (``bx``, ``pop {... pc}``) and ``halt`` observe
every register (whatever the program leaves behind is visible to the
caller or to the final machine state), so a value that survives to
function exit is never reported dead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instructions import (
    ALWAYS_SETS_FLAGS,
    Condition,
    Mnemonic,
    WRITES_FIRST_OPERAND,
)
from ..isa.registers import LR, NUM_REGISTERS, PC, SP
from .cfg import CALL_ARGUMENTS, CALL_CLOBBERED, is_return

#: pseudo-register index for the NZCV condition flags
FLAGS = NUM_REGISTERS

ALL_REGISTERS = frozenset(range(NUM_REGISTERS))


@dataclass(frozen=True)
class UseDef:
    """Registers an instruction reads and writes (FLAGS included).

    ``uses`` holds only the *explicit* operand reads; ``implicit_uses``
    holds convention-driven reads (a ``bl``'s argument registers) and
    ``observes_all`` marks returns/halts, which keep every register
    live without textually reading it.  Liveness folds all three in;
    the uninitialized-use check looks at ``uses`` alone (a caller that
    never sets r2 is fine when the callee takes one argument).  A
    conditional def also implicitly uses its own destination (the old
    value survives when the condition fails); liveness and dead-store
    detection account for that via ``conditional``.
    """

    uses: frozenset
    defs: frozenset
    implicit_uses: frozenset = frozenset()
    conditional: bool = False
    observes_all: bool = False

    @property
    def live_uses(self):
        """The uses that matter for liveness."""
        live = self.uses | self.implicit_uses
        if self.observes_all:
            live = live | ALL_REGISTERS
        if self.conditional:
            live = live | self.defs
        return live


def use_def(instruction):
    """Compute the :class:`UseDef` sets for one instruction."""
    mnemonic = instruction.mnemonic
    operands = instruction.operands
    uses, defs = set(), set()
    implicit = set()

    if mnemonic in WRITES_FIRST_OPERAND:
        defs.add(operands[0].value)
        for operand in operands[1:]:
            if operand.is_register:
                uses.add(operand.value)
    elif mnemonic in ALWAYS_SETS_FLAGS or mnemonic in (
            Mnemonic.STR, Mnemonic.STRB):
        for operand in operands:
            if operand.is_register:
                uses.add(operand.value)
    elif mnemonic is Mnemonic.PUSH:
        uses.update(operands[0].value)
        uses.add(SP)
        defs.add(SP)
    elif mnemonic is Mnemonic.POP:
        uses.add(SP)
        defs.update(operands[0].value)
        defs.add(SP)
    elif mnemonic is Mnemonic.BL:
        implicit.update(CALL_ARGUMENTS)
        defs.update(CALL_CLOBBERED)
        defs.add(LR)
        defs.add(FLAGS)
    elif mnemonic is Mnemonic.BX:
        if operands and operands[0].is_register:
            uses.add(operands[0].value)

    if instruction.set_flags or mnemonic in ALWAYS_SETS_FLAGS:
        defs.add(FLAGS)
    conditional = instruction.condition is not Condition.AL
    if conditional:
        uses.add(FLAGS)
    observes_all = is_return(instruction) or mnemonic is Mnemonic.HALT
    return UseDef(uses=frozenset(uses), defs=frozenset(defs),
                  implicit_uses=frozenset(implicit),
                  conditional=conditional, observes_all=observes_all)


@dataclass
class FunctionDataflow:
    """All per-function dataflow results, keyed by instruction address."""

    function: object  # FlowFunction
    use_defs: dict  # address -> UseDef
    live_out: dict  # block start -> frozenset of registers
    live_in: dict  # block start -> frozenset
    reach_in: dict  # block start -> frozenset of (def address, register)
    maybe_uninit: dict  # block start -> frozenset of registers at entry
    flags_set_in: dict  # block start -> bool (a flag-setter may reach)
    dead_stores: list = field(default_factory=list)  # (address, register)
    uninit_uses: list = field(default_factory=list)  # (address, register)
    unset_flag_uses: list = field(default_factory=list)  # addresses

    def def_use_chains(self, cfg):
        """Map each (address, register) definition to the uses it reaches."""
        chains = {}
        for start in self.function.blocks:
            reaching = set(self.reach_in[start])
            for address, _ in cfg.blocks[start].instructions:
                usedef = self.use_defs[address]
                for register in usedef.live_uses:
                    for definition in [d for d in reaching
                                       if d[1] == register]:
                        chains.setdefault(definition, []).append(address)
                for register in usedef.defs:
                    if not usedef.conditional:
                        reaching = {d for d in reaching if d[1] != register}
                    reaching.add((address, register))
        return chains


def analyze_function(cfg, function, initialized_at_entry=None):
    """Run every dataflow pass for one flow function.

    ``initialized_at_entry`` is the register set assumed defined when
    the function is entered; defaults to all registers.  The linter
    passes ``{SP, LR, PC}`` for the program entry only — a callee's
    "uninitialized" reads are really reads of caller state (saving
    callee-saved registers with ``push`` is the canonical example).
    """
    blocks = cfg.blocks
    use_defs = {}
    for start in function.blocks:
        for address, instruction in blocks[start].instructions:
            use_defs[address] = use_def(instruction)

    live_in, live_out = _liveness(blocks, function, use_defs)
    reach_in = _reaching_definitions(blocks, function, use_defs)
    maybe_uninit, flags_set_in = _forward_passes(
        blocks, function, use_defs,
        ALL_REGISTERS if initialized_at_entry is None
        else frozenset(initialized_at_entry))

    flow = FunctionDataflow(function=function, use_defs=use_defs,
                            live_out=live_out, live_in=live_in,
                            reach_in=reach_in, maybe_uninit=maybe_uninit,
                            flags_set_in=flags_set_in)
    _collect_findings(blocks, function, flow)
    return flow


def _liveness(blocks, function, use_defs):
    """Backward may-liveness at block granularity."""
    body = set(function.blocks)
    live_in = {start: frozenset() for start in body}
    live_out = {start: frozenset() for start in body}
    changed = True
    while changed:
        changed = False
        for start in reversed(function.blocks):
            block = blocks[start]
            out = set()
            for successor in block.successors:
                if successor in body:
                    out |= live_in[successor]
            live = set(out)
            for address, _ in reversed(block.instructions):
                usedef = use_defs[address]
                if not usedef.conditional:
                    live -= usedef.defs
                live |= usedef.live_uses
            if frozenset(out) != live_out[start] or (
                    frozenset(live) != live_in[start]):
                live_out[start] = frozenset(out)
                live_in[start] = frozenset(live)
                changed = True
    return live_in, live_out


def _reaching_definitions(blocks, function, use_defs):
    """Forward may-reach of (definition address, register) pairs.

    The synthetic entry definition site is ``None``.
    """
    body = set(function.blocks)
    reach_in = {start: frozenset() for start in body}
    entry_defs = frozenset(
        (None, register) for register in sorted(ALL_REGISTERS | {FLAGS}))
    changed = True
    while changed:
        changed = False
        for start in function.blocks:
            incoming = set()
            block = blocks[start]
            predecessors = [p for p in block.predecessors if p in body]
            if start == function.entry or not predecessors:
                incoming |= entry_defs
            for predecessor in predecessors:
                incoming |= _transfer_reach(
                    blocks[predecessor], reach_in[predecessor], use_defs)
            incoming = frozenset(incoming)
            if incoming != reach_in[start]:
                reach_in[start] = incoming
                changed = True
    return reach_in


def _transfer_reach(block, reaching, use_defs):
    current = set(reaching)
    for address, _ in block.instructions:
        usedef = use_defs[address]
        for register in usedef.defs:
            if not usedef.conditional:
                current = {d for d in current if d[1] != register}
            current.add((address, register))
    return current


def _forward_passes(blocks, function, use_defs, initialized_at_entry):
    """Must-initialized registers and may-reach flag-setters, fused."""
    body = set(function.blocks)
    # maybe_uninit: registers NOT initialized on at least one path
    entry_uninit = frozenset((ALL_REGISTERS | {FLAGS})
                             - initialized_at_entry)
    maybe_uninit = {start: None for start in body}  # None = unreached
    flags_set_in = {start: False for start in body}
    maybe_uninit[function.entry] = entry_uninit
    flags_set_in[function.entry] = FLAGS not in entry_uninit
    changed = True
    while changed:
        changed = False
        for start in function.blocks:
            if maybe_uninit[start] is None:
                continue
            uninit = set(maybe_uninit[start])
            flags_set = flags_set_in[start]
            for address, _ in blocks[start].instructions:
                usedef = use_defs[address]
                if not usedef.conditional:
                    uninit -= usedef.defs
                if FLAGS in usedef.defs:
                    flags_set = True
            for successor in blocks[start].successors:
                if successor not in body:
                    continue
                merged = (frozenset(uninit)
                          if maybe_uninit[successor] is None
                          else frozenset(maybe_uninit[successor] | uninit))
                new_flags = flags_set or flags_set_in[successor]
                if merged != maybe_uninit[successor] or (
                        new_flags != flags_set_in[successor]):
                    maybe_uninit[successor] = merged
                    flags_set_in[successor] = new_flags
                    changed = True
    for start in body:
        if maybe_uninit[start] is None:
            maybe_uninit[start] = entry_uninit
    return maybe_uninit, flags_set_in


def _collect_findings(blocks, function, flow):
    """Per-instruction walks feeding the lint rules."""
    body = set(function.blocks)
    for start in function.blocks:
        block = blocks[start]
        # --- dead stores: walk backward tracking liveness exactly ------
        live = set()
        for successor in block.successors:
            if successor in body:
                live |= flow.live_in[successor]
        for address, instruction in reversed(block.instructions):
            usedef = flow.use_defs[address]
            # Only plain destination writes qualify as dead stores;
            # calls/pops define registers as a calling-convention side
            # effect, and a conditional def may keep the old value.
            if not usedef.conditional and (
                    instruction.mnemonic in WRITES_FIRST_OPERAND
                    and not usedef.observes_all):
                register = instruction.operands[0].value
                if register not in (SP, PC) and register not in live:
                    flow.dead_stores.append((address, register))
            if not usedef.conditional:
                live -= usedef.defs
            live |= usedef.live_uses

        # --- uninitialized uses / stale flags: walk forward ------------
        uninit = set(flow.maybe_uninit[start])
        flags_set = flow.flags_set_in[start]
        for address, instruction in block.instructions:
            usedef = flow.use_defs[address]
            for register in sorted(usedef.uses):
                if register in uninit and register not in (FLAGS, PC):
                    flow.uninit_uses.append((address, register))
            if usedef.conditional and not flags_set:
                flow.unset_flag_uses.append(address)
            if not usedef.conditional:
                uninit -= usedef.defs
            if FLAGS in usedef.defs:
                flags_set = True
    flow.dead_stores.sort()
    flow.uninit_uses.sort()
    flow.unset_flag_uses.sort()
