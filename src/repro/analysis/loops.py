"""Trip-count inference for counted natural loops.

The canonical pattern the inference recognizes::

    loop:   ...
            add  r0, r0, #4      ; single induction step in the loop
            cmp  r0, #1024       ; in the same block as the guard branch
            blt  loop            ; back-edge guard (or: bge exit_label)

Requirements for a *usable guard*:

* the guard block's terminator is a conditional ``b`` whose last
  in-block flag-setter is a ``cmp`` of an induction register against a
  constant (immediate, or a register constant-propagation proves);
* the guard block belongs to this loop and to no deeper nested loop
  (so it runs at most once per iteration);
* either the taken edge is the back edge and the fallthrough leaves the
  loop (continue-guard: it must be the only latch), or the taken edge
  leaves the loop and the guard dominates every latch (exit-guard);
* the induction register has exactly one unconditional
  ``add/sub r, r, #imm`` definition inside the loop, outside any
  nested loop, in a block dominating every latch;
* the initial value is a constant at every loop entry edge.

Trip counts are then evaluated by stepping the induction sequence with
the CPU's exact 32-bit flag semantics (no closed form — wraparound and
signed/unsigned conditions stay bit-accurate), capped at
:data:`TRIP_SEARCH_CAP` iterations.  Loops with no usable guard get the
sound bounds ``[1, None]`` and :data:`DEFAULT_TRIP_ESTIMATE` as the
point estimate for the static profiler.
"""

from __future__ import annotations

from ..isa.instructions import Condition, Mnemonic
from .values import operand_value

#: give up searching for the first exit iteration beyond this
TRIP_SEARCH_CAP = 1 << 17
#: point estimate for loops whose trip count could not be bounded
DEFAULT_TRIP_ESTIMATE = 16

_MASK = 0xFFFFFFFF

_FLAG_SETTERS = (Mnemonic.CMP, Mnemonic.CMN, Mnemonic.TST)


def _condition_true(condition, lhs, rhs):
    """Evaluate ``condition`` against ``cmp lhs, rhs`` flags exactly."""
    lhs &= _MASK
    rhs &= _MASK
    result = (lhs - rhs) & _MASK
    negative = bool(result & 0x8000_0000)
    zero = result == 0
    carry = lhs >= rhs
    overflow = bool(((lhs ^ rhs) & (lhs ^ result)) & 0x8000_0000)
    if condition is Condition.EQ:
        return zero
    if condition is Condition.NE:
        return not zero
    if condition is Condition.LT:
        return negative != overflow
    if condition is Condition.LE:
        return zero or negative != overflow
    if condition is Condition.GT:
        return not zero and negative == overflow
    if condition is Condition.GE:
        return negative == overflow
    if condition is Condition.MI:
        return negative
    if condition is Condition.PL:
        return not negative
    if condition is Condition.HS:
        return carry
    if condition is Condition.LO:
        return not carry
    if condition is Condition.HI:
        return carry and not zero
    if condition is Condition.LS:
        return not carry or zero
    return True  # AL


def innermost_loop_of(function, block_start):
    loops = function.loops_containing(block_start)
    return loops[-1] if loops else None


def loop_exit_edges(cfg, loop):
    """Edges (block, successor) leaving the loop body."""
    edges = []
    for start in sorted(loop.body):
        for successor in cfg.blocks[start].successors:
            if successor not in loop.body:
                edges.append((start, successor))
    return edges


def loop_has_dynamic_exit(cfg, loop):
    """True when the loop body can terminate without an exit edge."""
    from .cfg import is_return
    for start in loop.body:
        for _, instruction in cfg.blocks[start].instructions:
            if instruction.mnemonic is Mnemonic.HALT or (
                    is_return(instruction)):
                return True
        if cfg.blocks[start].falls_off_end:
            return True
    return False


def _last_flag_setter(block):
    """The last in-block flag-setting instruction before the terminator."""
    found = None
    for address, instruction in block.instructions[:-1]:
        if instruction.set_flags:
            found = (address, instruction)
    return found


def _induction_step(cfg, function, loop, register):
    """The loop's single ``add/sub register, register, #imm`` def."""
    step = None
    for start in sorted(loop.body):
        for address, instruction in cfg.blocks[start].instructions:
            from .dataflow import use_def
            if register not in use_def(instruction).defs:
                continue
            usable = (
                instruction.mnemonic in (Mnemonic.ADD, Mnemonic.SUB)
                and instruction.condition is Condition.AL
                and instruction.operands[0].value == register
                and instruction.operands[1].is_register
                and instruction.operands[1].value == register
                and instruction.operands[2].is_immediate
                and innermost_loop_of(function, start) is loop
                and all(function.dominates(start, latch)
                        for latch in loop.latches))
            if not usable or step is not None:
                return None
            delta = instruction.operands[2].value
            if instruction.mnemonic is Mnemonic.SUB:
                delta = -delta
            if delta == 0:
                return None
            step = (start, address, delta)
    return step


def _initial_value(cfg, function, constprop, loop, register):
    """The induction register's constant value at loop entry, or None."""
    value = None
    domain = constprop.domain
    entry_blocks = [p for p in cfg.blocks[loop.header].predecessors
                    if p in function.blocks and p not in loop.body]
    if not entry_blocks:
        return None
    for predecessor in entry_blocks:
        state = constprop.block_in.get((function.entry, predecessor))
        if state is None:
            return None
        from .values import transfer
        for _, instruction in cfg.blocks[predecessor].instructions:
            state = transfer(domain, state, instruction)
        value = domain.meet(value, state[register])
    if value is not None and value.is_const:
        return value.const
    return None


def _guard_bound(cfg, function, constprop, loop, guard_start):
    """Header-execution bound from one guard block, or None."""
    block = cfg.blocks[guard_start]
    terminator = block.terminator
    if terminator.mnemonic is not Mnemonic.B or (
            terminator.condition is Condition.AL):
        return None
    if innermost_loop_of(function, guard_start) is not loop:
        return None
    setter = _last_flag_setter(block)
    if setter is None or setter[1].mnemonic is not Mnemonic.CMP:
        return None
    cmp_address, cmp_instruction = setter
    lhs = cmp_instruction.operands[0]
    if not lhs.is_register:
        return None
    register = lhs.value
    state = constprop.state_at(function, guard_start, cmp_address)
    if state is None:
        return None
    rhs_value = operand_value(state, cmp_instruction.operands[1])
    if not rhs_value.is_const:
        return None
    bound = rhs_value.const

    taken = terminator.operands[0].value
    fallthrough = block.end
    if taken == loop.header and fallthrough not in loop.body:
        # continue-guard: loop runs while the condition holds
        if loop.latches != (guard_start,):
            return None
        exit_when_true = False
    elif taken not in loop.body and fallthrough in loop.body:
        # exit-guard at the top or middle of the body
        if not all(function.dominates(guard_start, latch)
                   for latch in loop.latches):
            return None
        exit_when_true = True
    else:
        return None

    step = _induction_step(cfg, function, loop, register)
    if step is None:
        return None
    step_block, step_address, delta = step
    init = _initial_value(cfg, function, constprop, loop, register)
    if init is None:
        return None

    # Does the induction step run before the cmp within one iteration?
    if step_block == guard_start:
        orders = (step_address < cmp_address,)
    elif function.dominates(step_block, guard_start) and (
            guard_start != loop.header):
        orders = (True,)
    elif guard_start == loop.header and step_block != loop.header:
        orders = (False,)
    else:
        orders = (True, False)  # ambiguous: widen over both

    bounds = []
    for stepped_first in orders:
        first = init + (delta if stepped_first else 0)
        count = _first_flip(terminator.condition, first, delta, bound,
                            exit_when_true)
        if count is None:
            return None
        bounds.append(count)
    return min(bounds), max(bounds)


def _first_flip(condition, first, delta, bound, exit_when_true):
    """First header execution at which the guard stops continuing."""
    value = first
    for i in range(1, TRIP_SEARCH_CAP + 1):
        taken = _condition_true(condition, value, bound)
        if exit_when_true and taken:
            return i
        if not exit_when_true and not taken:
            return i
        value = (value + delta) & _MASK
    return None


def _exits_rejoin_a_loop(function, exit_edges):
    """True when some exit edge lands inside another loop's body."""
    for _, successor in exit_edges:
        for loop in function.loops:
            if successor in loop.body:
                return True
    return False


def infer_trip_counts(cfg, function, constprop):
    """Fill ``trip_lo``/``trip_hi``/``trip_estimate`` on every loop."""
    for loop in function.loops:
        loop.trip_lo, loop.trip_hi = 1, None
        if function.irreducible:
            loop.trip_estimate = DEFAULT_TRIP_ESTIMATE
            continue
        exit_edges = loop_exit_edges(cfg, loop)
        guard_bounds = {}
        for guard_start in sorted(loop.body):
            result = _guard_bound(cfg, function, constprop, loop,
                                  guard_start)
            if result is not None:
                guard_bounds[guard_start] = result
        if guard_bounds:
            loop.trip_hi = min(hi for _, hi in guard_bounds.values())
            # The bound is exact when a deterministic guard is the only
            # way out of the loop and its two orderings agree.
            if (len(exit_edges) == 1
                    and exit_edges[0][0] in guard_bounds
                    and not loop_has_dynamic_exit(cfg, loop)):
                lo, hi = guard_bounds[exit_edges[0][0]]
                loop.trip_lo = max(1, lo)
            else:
                loop.trip_lo = 1
        if loop.trip_hi is None:
            loop.trip_estimate = DEFAULT_TRIP_ESTIMATE
        elif loop.trip_lo == loop.trip_hi:
            loop.trip_estimate = loop.trip_hi
        elif _exits_rejoin_a_loop(function, exit_edges):
            # A data-dependent exit that lands back inside an outer loop
            # is a search hit (string match, early break to the next
            # outer iteration) — those fire often, so expect the middle.
            loop.trip_estimate = max(
                (loop.trip_lo + loop.trip_hi) // 2, 1)
        else:
            # A data-dependent exit straight out of the loop nest is a
            # termination check (convergence, sentinel) — those rarely
            # fire, so expect the loop to run its full bound.
            loop.trip_estimate = loop.trip_hi
