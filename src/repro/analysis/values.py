"""Abstract constant/pointer propagation through the register file.

The domain has three kinds of value:

* ``CONST c`` — the register provably holds the 32-bit constant ``c``
  (address constants from ``ldr rd, =sym`` included);
* ``PTR {names}`` — the register holds *some* address inside the named
  data regions (data objects or the stack window).  Produced when
  pointer arithmetic mixes a known base with an unknown index, and when
  two different address constants meet at a join — exactly what the
  static profiler needs to attribute a ``ldr r2, [r6, r0]`` to its
  array without knowing the index;
* ``TOP`` — anything.

Propagation is an interprocedural fixpoint: a function's entry state is
the meet of the machine states at every ``bl`` site targeting it (the
callee sees the caller's registers); ``bl`` clobbers r0–r3/r12/lr at the
call site per the calling convention.  Recursion converges because the
lattice is finite-height.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.instructions import Condition, Mnemonic, OperandKind
from ..isa.registers import LR, NUM_REGISTERS, SP
from ..profile.blocks import STACK_BLOCK_NAME
from .cfg import CALL_CLOBBERED

_MASK = 0xFFFFFFFF

K_TOP = "top"
K_CONST = "const"
K_PTR = "ptr"


@dataclass(frozen=True)
class Value:
    """One abstract register value."""

    kind: str
    const: int = 0
    regions: frozenset = frozenset()

    @property
    def is_const(self):
        return self.kind == K_CONST

    @property
    def is_pointer(self):
        return self.kind == K_PTR

    def __repr__(self):
        if self.kind == K_CONST:
            return "CONST(0x%x)" % self.const
        if self.kind == K_PTR:
            return "PTR(%s)" % ",".join(sorted(self.regions))
        return "TOP"


TOP = Value(K_TOP)


def const(value):
    return Value(K_CONST, const=value & _MASK)


def pointer(regions):
    regions = frozenset(regions)
    if not regions:
        return TOP
    return Value(K_PTR, regions=regions)


def _signed(value):
    value &= _MASK
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


class ValueDomain:
    """Program-aware value operations (region resolution needs layout)."""

    def __init__(self, program):
        self.program = program
        self._stack_low = program.stack_top - program.stack_size

    def region_of(self, address):
        """The data-like region containing an address, or None."""
        obj = self.program.data_object_at(address)
        if obj is not None:
            return obj.name
        if self._stack_low <= address < self.program.stack_top:
            return STACK_BLOCK_NAME
        return None

    def regions_of(self, value):
        """The data-like regions a value may point into (may be empty)."""
        if value.is_pointer:
            return value.regions
        if value.is_const:
            region = self.region_of(value.const)
            if region is not None:
                return frozenset({region})
        return frozenset()

    def meet(self, a, b):
        """Join two values coming from different paths."""
        if a is None:
            return b
        if b is None:
            return a
        if a == b:
            return a
        regions = self.regions_of(a) | self.regions_of(b)
        if regions and self.regions_of(a) and self.regions_of(b):
            return pointer(regions)
        return TOP

    def _pointerish_add(self, a, b):
        regions = self.regions_of(a) | self.regions_of(b)
        if regions:
            return pointer(regions)
        return TOP

    def add(self, a, b):
        if a.is_const and b.is_const:
            return const(a.const + b.const)
        return self._pointerish_add(a, b)

    def sub(self, a, b):
        if a.is_const and b.is_const:
            return const(a.const - b.const)
        # base - index stays inside (or near) the base's region
        regions = self.regions_of(a)
        if regions:
            return pointer(regions)
        return TOP

    def unary(self, mnemonic, a):
        if not a.is_const:
            return TOP
        if mnemonic is Mnemonic.MVN:
            return const(~a.const)
        return a

    def binary(self, mnemonic, a, b):
        """Evaluate a two-source ALU op; TOP unless both sides const."""
        if mnemonic is Mnemonic.ADD:
            return self.add(a, b)
        if mnemonic is Mnemonic.SUB:
            return self.sub(a, b)
        if not (a.is_const and b.is_const):
            return TOP
        x, y = a.const, b.const
        if mnemonic is Mnemonic.RSB:
            return const(y - x)
        if mnemonic is Mnemonic.MUL:
            return const(x * y)
        if mnemonic is Mnemonic.AND:
            return const(x & y)
        if mnemonic is Mnemonic.ORR:
            return const(x | y)
        if mnemonic is Mnemonic.EOR:
            return const(x ^ y)
        if mnemonic is Mnemonic.BIC:
            return const(x & ~y)
        if mnemonic is Mnemonic.LSL:
            return const(x << y) if 0 <= y < 32 else TOP
        if mnemonic is Mnemonic.LSR:
            return const(x >> y) if 0 <= y < 32 else TOP
        if mnemonic is Mnemonic.ASR:
            return const(_signed(x) >> y) if 0 <= y < 32 else TOP
        if mnemonic is Mnemonic.SDIV:
            if y == 0:
                return TOP
            sx, sy = _signed(x), _signed(y)
            return const(int(sx / sy))  # truncation toward zero
        if mnemonic is Mnemonic.UDIV:
            return const(x // y) if y else TOP
        return TOP


def entry_state(domain):
    """The abstract machine state at the program entry point."""
    state = [TOP] * NUM_REGISTERS
    state[SP] = pointer({STACK_BLOCK_NAME})
    return tuple(state)


def meet_states(domain, a, b):
    if a is None:
        return b
    if b is None:
        return a
    return tuple(domain.meet(x, y) for x, y in zip(a, b))


def operand_value(state, operand):
    """The abstract value of a source operand."""
    if operand.kind is OperandKind.IMMEDIATE:
        return const(operand.value)
    if operand.kind is OperandKind.REGISTER:
        return state[operand.value]
    return TOP


def transfer(domain, state, instruction):
    """Abstractly execute one instruction over a register state tuple."""
    state = list(state)
    mnemonic = instruction.mnemonic
    operands = instruction.operands
    new = {}

    if mnemonic in (Mnemonic.MOV, Mnemonic.MVN):
        new[operands[0].value] = domain.unary(
            mnemonic, operand_value(state, operands[1]))
    elif mnemonic in (Mnemonic.ADD, Mnemonic.SUB, Mnemonic.RSB,
                      Mnemonic.MUL, Mnemonic.AND, Mnemonic.ORR,
                      Mnemonic.EOR, Mnemonic.BIC, Mnemonic.LSL,
                      Mnemonic.LSR, Mnemonic.ASR, Mnemonic.SDIV,
                      Mnemonic.UDIV):
        new[operands[0].value] = domain.binary(
            mnemonic,
            operand_value(state, operands[1]),
            operand_value(state, operands[2]))
    elif mnemonic is Mnemonic.MLA:
        product = domain.binary(Mnemonic.MUL,
                                operand_value(state, operands[1]),
                                operand_value(state, operands[2]))
        new[operands[0].value] = domain.add(
            product, operand_value(state, operands[3]))
    elif mnemonic in (Mnemonic.LDR, Mnemonic.LDRB):
        if len(operands) == 2 and operands[1].is_immediate:
            # address generation: ldr rd, =sym
            new[operands[0].value] = const(operands[1].value)
        else:
            new[operands[0].value] = TOP  # memory contents untracked
    elif mnemonic is Mnemonic.POP:
        for register in instruction.operands[0].value:
            new[register] = TOP
    elif mnemonic is Mnemonic.BL:
        for register in CALL_CLOBBERED:
            new[register] = TOP
        new[LR] = TOP
    # PUSH/STR/STRB/CMP/B/BX/NOP/HALT leave the register state alone
    # (SP stays PTR(Stack) across push/pop adjustments).

    conditional = instruction.condition is not Condition.AL
    for register, value in new.items():
        if register == SP and mnemonic in (Mnemonic.PUSH, Mnemonic.POP):
            continue
        state[register] = (domain.meet(state[register], value)
                           if conditional else value)
    return tuple(state)


class ConstantPropagation:
    """Interprocedural constant/pointer propagation over a CFG."""

    def __init__(self, cfg):
        self.cfg = cfg
        self.domain = ValueDomain(cfg.program)
        #: function entry address -> entry state (meet over call sites)
        self.entry_states = {}
        #: (function entry, block start) -> state at block entry
        self.block_in = {}
        self._solve()

    # --- fixpoint ---------------------------------------------------------

    def _solve(self):
        cfg, domain = self.cfg, self.domain
        program_entry = cfg.entry
        if program_entry in cfg.functions:
            self.entry_states[program_entry] = entry_state(domain)
        # Called functions start at bottom (absent, which meet_states
        # treats as identity) so the meet over their call sites can
        # actually refine — seeding them TOP would pin them there.
        # Only functions no call site targets default to all-TOP
        # (their callers are unknown).
        called = {target for _, target in cfg.call_sites}
        for entry in cfg.functions:
            if entry not in called:
                self.entry_states.setdefault(
                    entry, tuple([TOP] * NUM_REGISTERS))

        for _ in range(64):  # outer interprocedural fixpoint
            call_states = {}
            for entry, function in cfg.functions.items():
                self._solve_function(function, call_states)
            changed = False
            for target, state in call_states.items():
                if target not in cfg.functions:
                    continue
                if target == program_entry:
                    continue  # the entry keeps its machine state
                merged = meet_states(domain, self.entry_states.get(target),
                                     state)
                if merged != self.entry_states.get(target):
                    self.entry_states[target] = merged
                    changed = True
            if not changed:
                break
        else:
            # Non-convergence would be a lattice bug; degrade safely.
            for entry in cfg.functions:
                if entry != program_entry:
                    self.entry_states[entry] = tuple(
                        [TOP] * NUM_REGISTERS)
            call_states = {}
            for entry, function in cfg.functions.items():
                self._solve_function(function, call_states)
            return
        # A called function whose only callers are themselves
        # unreachable never received a call state; analyze it with an
        # all-TOP entry so its intra-function constants still resolve.
        orphans = [entry for entry in cfg.functions
                   if entry not in self.entry_states]
        if orphans:
            for entry in orphans:
                self.entry_states[entry] = tuple([TOP] * NUM_REGISTERS)
            call_states = {}
            for entry in orphans:
                self._solve_function(cfg.functions[entry], call_states)

    def _solve_function(self, function, call_states):
        cfg, domain = self.cfg, self.domain
        body = set(function.blocks)
        states = {start: None for start in body}
        states[function.entry] = self.entry_states.get(function.entry)
        worklist = list(function.blocks)
        iterations = 0
        while worklist and iterations < 10000:
            iterations += 1
            start = worklist.pop(0)
            state = states[start]
            if state is None:
                continue
            out = state
            block = cfg.blocks[start]
            for _, instruction in block.instructions:
                if instruction.mnemonic is Mnemonic.BL:
                    target = block.call_target
                    if target is not None:
                        call_states[target] = meet_states(
                            domain, call_states.get(target), out)
                out = transfer(domain, out, instruction)
            for successor in block.successors:
                if successor not in body:
                    continue
                merged = meet_states(domain, states[successor], out)
                if merged != states[successor]:
                    states[successor] = merged
                    if successor not in worklist:
                        worklist.append(successor)
        for start, state in states.items():
            key = (function.entry, start)
            self.block_in[key] = meet_states(
                domain, self.block_in.get(key), state)

    # --- queries ----------------------------------------------------------

    def state_at(self, function, block_start, address):
        """The register state just before ``address`` in a block."""
        state = self.block_in.get((function.entry, block_start))
        if state is None:
            return None
        for instr_address, instruction in (
                self.cfg.blocks[block_start].instructions):
            if instr_address == address:
                return state
            state = transfer(self.domain, state, instruction)
        return None

    def value_at(self, function, block_start, address, register):
        state = self.state_at(function, block_start, address)
        if state is None:
            return TOP
        return state[register]

    def address_regions(self, function, block_start, address, instruction):
        """Where a ``ldr/str [base, off]`` may touch.

        Returns ``(constant_address or None, frozenset of region names)``.
        An empty region set with no constant means "unknown".
        """
        state = self.state_at(function, block_start, address)
        if state is None:
            return None, frozenset()
        operands = instruction.operands
        if len(operands) != 3:
            return None, frozenset()
        base = state[operands[1].value]
        offset = operand_value(state, operands[2])
        target = self.domain.add(base, offset)
        if target.is_const:
            return target.const, self.domain.regions_of(target)
        return None, self.domain.regions_of(target)
