"""Static analysis over assembled :class:`~repro.isa.program.Program`s.

Layers, bottom to top:

* :mod:`.cfg` — basic blocks, intra-function edges, call graph,
  dominators, natural loops;
* :mod:`.dataflow` — use/def sets, reaching flag-setters, liveness,
  maybe-uninitialized registers, def-use chains;
* :mod:`.values` — abstract constant/pointer propagation through the
  16-register file and condition flags (interprocedural fixpoint);
* :mod:`.loops` — trip-count inference for counted natural loops;
* :mod:`.staticprofile` — the simulation-free profile estimator
  (:class:`~repro.profile.bounds.StaticProfile` for MDA);
* :mod:`.lint` — the ``repro lint`` rule catalog over all of the above.

A sibling layer, :mod:`.hostlint`, points the same finding/baseline
machinery at the *host* code — the ``repro`` package's own Python
source — as ``repro devlint``.  ``lint`` checks programs the package
simulates; ``hostlint`` checks the package itself.
"""

from .cfg import BasicBlock, ControlFlowGraph, FlowFunction, Loop, build_cfg
from .hostlint import DEVLINT_RULES, DevlintReport, lint_modules, lint_package
from .lint import LINT_RULES, LintReport, lint_program, lint_source
from .staticprofile import build_static_profile

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "FlowFunction",
    "Loop",
    "build_cfg",
    "LINT_RULES",
    "LintReport",
    "lint_program",
    "lint_source",
    "DEVLINT_RULES",
    "DevlintReport",
    "lint_modules",
    "lint_package",
    "build_static_profile",
]
