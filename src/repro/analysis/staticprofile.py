"""Simulation-free profile estimation (the paper's MDA inputs, bounded).

The estimator turns CFG + trip counts + constant propagation into the
same per-block quantities the dynamic profiler measures:

* **fetch counts** for code blocks — sound ``[lo, hi]`` execution-count
  bounds per basic block (products of loop trip bounds, call-count
  propagation through the call graph) summed over each ``.func`` range;
* **data access counts** — every ``ldr/str/push/pop`` site attributed
  to the data object(s) or stack its address can reach, weighted by the
  site's execution bounds;
* **ACE-interval and lifetime estimates** — block activity windows from
  a deterministic schedule walk over the loop nest, with a documented
  cost model (the estimate feeds MDA's susceptibility ordering; the
  sound ACE *bounds* are kept separately and are intentionally loose).

Lower bounds are genuinely sound: a block's count is only bounded away
from zero when it dominates every function exit and cannot be starved
by a non-returning callee or an unbounded loop.  Upper bounds go to
``None`` (unbounded) on recursion, data-dependent loops, or indirect
branches.  Point estimates fill the gaps with documented defaults so
MDA always gets a usable profile; every such guess is recorded in
``StaticProfile.assumptions``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.instructions import Condition, Mnemonic
from ..isa.registers import LR
from ..profile.blocks import (
    BlockKind,
    ProgramBlock,
    STACK_BLOCK_NAME,
    enumerate_blocks,
)
from ..profile.bounds import BlockAccessBounds, CountBounds, StaticProfile
from ..profile.profiler import BlockStats
from .cfg import build_cfg, is_return, writes_pc
from .loops import infer_trip_counts
from .values import ConstantPropagation

#: calls per external invocation assumed for a recursive cycle; a
#: divide-and-conquer routine over an SPM-sized object (hundreds of
#: words) makes on the order of that many calls, e.g. ~680 for the
#: case study's 512-word quicksort
RECURSION_CALL_ESTIMATE = 256
#: stack frames assumed live for a recursive cycle
RECURSION_DEPTH_ESTIMATE = 16
#: worst-case cycles per individual memory access (deep miss path);
#: only used for the sound upper bound on total/ACE cycles
WORST_CASE_ACCESS_CYCLES = 256


@dataclass(frozen=True)
class Count:
    """Sound bounds plus a point estimate for one counted quantity."""

    bounds: CountBounds
    est: int

    @classmethod
    def exact(cls, value):
        return cls(CountBounds.exact(value), value)

    def __add__(self, other):
        return Count(self.bounds + other.bounds, self.est + other.est)

    def __mul__(self, other):
        return Count(self.bounds * other.bounds, self.est * other.est)

    def scaled(self, factor):
        return Count(self.bounds.scaled(factor), self.est * factor)

    def conditional(self):
        """The count of an effect guarded by a condition code."""
        return Count(self.bounds.widen_lo(0), (self.est + 1) // 2)


ZERO_COUNT = Count(CountBounds(0, 0), 0)
ONE_COUNT = Count(CountBounds(1, 1), 1)


def _instruction_cost(instruction):
    """Estimated cycles to fetch and execute one instruction (hits)."""
    mnemonic = instruction.mnemonic
    cost = 2  # fetch + execute
    if mnemonic in (Mnemonic.MUL, Mnemonic.MLA):
        cost += 2
    elif mnemonic in (Mnemonic.SDIV, Mnemonic.UDIV):
        cost += 10
    elif mnemonic in (Mnemonic.B, Mnemonic.BL, Mnemonic.BX):
        cost += 1
    cost += _access_width(instruction)
    return cost


def _access_width(instruction):
    """Data accesses one execution performs (0 for non-memory ops)."""
    mnemonic = instruction.mnemonic
    if mnemonic in (Mnemonic.PUSH, Mnemonic.POP):
        return len(instruction.operands[0].value)
    if mnemonic in (Mnemonic.LDR, Mnemonic.LDRB,
                    Mnemonic.STR, Mnemonic.STRB):
        return 1 if len(instruction.operands) == 3 else 0
    return 0


def _worst_cost(instruction):
    """Sound per-execution cycle ceiling (every access a deep miss)."""
    return (WORST_CASE_ACCESS_CYCLES + 12
            + _access_width(instruction) * WORST_CASE_ACCESS_CYCLES)


class ProgramAnalysis:
    """Everything the static profiler and the linter share."""

    def __init__(self, program):
        self.program = program
        self.cfg = build_cfg(program)
        self.constprop = ConstantPropagation(self.cfg)
        for function in self.cfg.functions.values():
            infer_trip_counts(self.cfg, function, self.constprop)
        self.assumptions = []
        self.has_indirect_flow = self._detect_indirect_flow()
        self._callees = self._call_edges()
        self._scc_order, self._recursive = self._condense_call_graph()
        self.may_not_return = self._classify_returns()
        self.rel_counts = {}  # (fn entry, block start) -> Count
        self.entry_counts = {}  # fn entry -> Count (invocations)
        self.block_counts = {}  # block start -> absolute Count
        self._compute_counts()
        self.durations = self._compute_durations()
        self.windows = {}  # block start -> (start_cycle, end_cycle)
        self.total_cycles_est = self._assign_windows()
        self.total_cycles_hi = self._total_cycles_hi()

    # --- call graph -------------------------------------------------------

    def _detect_indirect_flow(self):
        """Indirect jumps the analyzer cannot chase (``bx r5``)."""
        for address, instruction in self.program.iter_instructions():
            if instruction.mnemonic is Mnemonic.BX:
                operand = instruction.operands[0]
                if operand.is_register and operand.value != LR:
                    self.assumptions.append(
                        "indirect branch at 0x%05x: upper bounds dropped"
                        % address)
                    return True
            elif writes_pc(instruction) and (
                    instruction.mnemonic is not Mnemonic.POP):
                self.assumptions.append(
                    "pc write at 0x%05x: upper bounds dropped" % address)
                return True
        return False

    def call_sites_of(self, entry):
        """``(block start, callee entry)`` for resolvable calls."""
        function = self.cfg.functions[entry]
        sites = []
        for start in function.blocks:
            target = self.cfg.blocks[start].call_target
            if target is not None and target in self.cfg.functions:
                sites.append((start, target))
        return sites

    def _call_edges(self):
        return {entry: sorted({target for _, target
                               in self.call_sites_of(entry)})
                for entry in self.cfg.functions}

    def _condense_call_graph(self):
        """SCC condensation; returns (topological order, recursive set)."""
        reachable = {}
        for entry in self.cfg.functions:
            seen = set()
            stack = [entry]
            while stack:
                node = stack.pop()
                for callee in self._callees.get(node, ()):
                    if callee not in seen:
                        seen.add(callee)
                        stack.append(callee)
            reachable[entry] = seen
        recursive = {entry for entry in self.cfg.functions
                     if entry in reachable[entry]}
        # Kahn's algorithm over the SCC-free "calls into" relation:
        # callers first, so entry counts accumulate downward.
        order = []
        remaining = set(self.cfg.functions)
        while remaining:
            layer = [entry for entry in sorted(remaining)
                     if not any(entry in reachable[other]
                                and other not in reachable[entry]
                                for other in remaining if other != entry)]
            if not layer:
                layer = sorted(remaining)  # cyclic leftovers
            order.extend(layer)
            remaining -= set(layer)
        return order, recursive

    def _classify_returns(self):
        """Which functions might never hand control back to a caller."""
        may_not_return = {}
        for entry in reversed(self._scc_order):  # callees first
            function = self.cfg.functions[entry]
            bad = entry in self._recursive or function.irreducible
            if not function.exit_blocks:
                bad = True
            for exit_start in function.exit_blocks:
                terminator = self.cfg.blocks[exit_start].terminator
                if not is_return(terminator):
                    bad = True  # halts or falls off the image
            for loop in function.loops:
                if loop.trip_hi is None:
                    bad = True
            for callee in self._callees.get(entry, ()):
                if may_not_return.get(callee, callee in self._recursive):
                    bad = True
            may_not_return[entry] = bad
        return may_not_return

    # --- relative (per-invocation) execution counts -----------------------

    def _relative_counts(self, entry):
        cfg = self.cfg
        function = cfg.functions[entry]
        body = set(function.blocks)
        innermost = {}
        for start in function.blocks:
            containing = function.loops_containing(start)
            innermost[start] = containing[-1] if containing else None

        header_counts = {}  # loop header -> (hi or None, est)
        in_progress = set()

        def hi_est_of(start):
            loop = innermost[start]
            if loop is None:
                return 1, 1
            return header_count(loop)

        def header_count(loop):
            # A loop's entry count depends on the counts of loops its
            # outside predecessors sit in (a sibling loop's guard can
            # fall straight into this header), so resolve on demand
            # rather than in any fixed processing order.
            if loop.header in header_counts:
                return header_counts[loop.header]
            if loop.header in in_progress:
                # mutually-entered loops: no finite bound without a
                # full system solve, so give up on the upper bound
                return None, 1
            in_progress.add(loop.header)
            entries_hi, entries_est = 0, 0
            for predecessor in cfg.blocks[loop.header].predecessors:
                if predecessor in body and predecessor not in loop.body:
                    pred_hi, pred_est = hi_est_of(predecessor)
                    entries_hi = (None if entries_hi is None
                                  or pred_hi is None
                                  else entries_hi + pred_hi)
                    entries_est += pred_est
            if loop.header == entry:
                entries_hi = None if entries_hi is None else entries_hi + 1
                entries_est += 1
            in_progress.discard(loop.header)
            if entries_est == 0 and entries_hi == 0:
                # loop only reachable through itself: dead
                result = (0, 0)
            else:
                hi = (None if entries_hi is None or loop.trip_hi is None
                      else entries_hi * loop.trip_hi)
                result = (hi, max(entries_est, 1)
                          * max(loop.trip_estimate or 1, 1))
            header_counts[loop.header] = result
            return result

        guaranteed = self._guaranteed_blocks(function)
        for start in function.blocks:
            hi, est = hi_est_of(start)
            loop = innermost[start]
            if loop is not None and not all(
                    function.dominates(start, latch)
                    for latch in loop.latches):
                # a guarded block inside the loop body: it skips some
                # iterations, so expect it to run about half of them
                est = max(est // 2, 1)
            if self.has_indirect_flow:
                hi = None
            lo = 0
            if start in guaranteed:
                lo = 1
                for loop in function.loops_containing(start):
                    if all(function.dominates(start, latch)
                           for latch in loop.latches):
                        lo *= loop.trip_lo
            if hi is not None and lo > hi:
                lo = hi
            self.rel_counts[(entry, start)] = Count(
                CountBounds(lo, hi), max(est, lo))

    def _guaranteed_blocks(self, function):
        """Blocks provably executed on every invocation."""
        if function.irreducible or not function.exit_blocks:
            return set()
        cutting_calls = [
            start for start, target in self.call_sites_of(function.entry)
            if self.may_not_return.get(target, True)]
        unbounded_headers = [loop.header for loop in function.loops
                             if loop.trip_hi is None]
        guaranteed = set()
        for start in function.blocks:
            if not all(function.dominates(start, exit_start)
                       for exit_start in function.exit_blocks):
                continue
            # a non-returning callee or a possibly-diverging loop that
            # can run before this block voids the guarantee
            if any(not function.dominates(start, call)
                   for call in cutting_calls):
                continue
            if any(not function.dominates(start, header)
                   for header in unbounded_headers):
                continue
            guaranteed.add(start)
        return guaranteed

    # --- absolute counts --------------------------------------------------

    def _compute_counts(self):
        for entry in self.cfg.functions:
            self._relative_counts(entry)

        program_entry = self.cfg.entry
        for entry in self._scc_order:  # callers first
            count = ZERO_COUNT
            if entry == program_entry:
                count = count + ONE_COUNT
            for caller, sites in self._callees.items():
                if entry not in sites:
                    continue
                caller_count = self.entry_counts.get(caller)
                if caller_count is None:
                    continue  # intra-SCC edge; handled by recursion rules
                for start, target in self.call_sites_of(caller):
                    if target != entry:
                        continue
                    site = caller_count * self.rel_counts[(caller, start)]
                    terminator = self.cfg.blocks[start].terminator
                    if terminator.condition is not Condition.AL:
                        site = site.conditional()
                    count = count + site
            if entry in self._recursive:
                if count.est or count.bounds.hi is None or count.bounds.hi:
                    self.assumptions.append(
                        "recursion through %r: call count unbounded"
                        % self.cfg.functions[entry].name)
                count = Count(CountBounds.unbounded(count.bounds.lo),
                              max(count.est, 1) * RECURSION_CALL_ESTIMATE)
            self.entry_counts[entry] = count

        for entry in self.cfg.functions:
            invocation = self.entry_counts[entry]
            for start in self.cfg.functions[entry].blocks:
                absolute = invocation * self.rel_counts[(entry, start)]
                previous = self.block_counts.get(start, ZERO_COUNT)
                self.block_counts[start] = previous + absolute

    def block_count(self, start):
        return self.block_counts.get(start, ZERO_COUNT)

    # --- durations and activity windows -----------------------------------

    def _compute_durations(self):
        durations = {}
        for entry in reversed(self._scc_order):  # callees first
            function = self.cfg.functions[entry]
            total = 0
            for start in function.blocks:
                rel = self.rel_counts[(entry, start)].est
                block = self.cfg.blocks[start]
                cost = sum(_instruction_cost(instruction)
                           for _, instruction in block.instructions)
                total += rel * cost
                target = block.call_target
                if target is not None and target in durations:
                    total += rel * durations[target]
            if entry in self._recursive:
                total *= RECURSION_DEPTH_ESTIMATE
            durations[entry] = max(total, 1)
        return durations

    def _window_add(self, start, begin, end):
        window = self.windows.get(start)
        if window is None:
            self.windows[start] = (begin, end)
        else:
            self.windows[start] = (min(window[0], begin),
                                   max(window[1], end))

    def _flat_windows(self, entry, begin, end, seen):
        """Assign one window to a whole function subtree (recursion)."""
        if entry in seen:
            return
        seen.add(entry)
        for start in self.cfg.functions[entry].blocks:
            self._window_add(start, begin, end)
        for callee in self._callees.get(entry, ()):
            self._flat_windows(callee, begin, end, seen)

    def _loop_duration(self, entry, loop):
        function = self.cfg.functions[entry]
        total = 0
        for start in sorted(loop.body):
            multiplier = 1
            for containing in function.loops_containing(start):
                multiplier *= max(containing.trip_estimate or 1, 1)
            block = self.cfg.blocks[start]
            cost = sum(_instruction_cost(instruction)
                       for _, instruction in block.instructions)
            target = block.call_target
            if target is not None:
                cost += self.durations.get(target, 0)
            total += multiplier * cost
        return max(total, 1)

    def _walk_windows(self, entry, start_cycle, path):
        if entry in path:
            self._flat_windows(entry, start_cycle,
                               start_cycle + self.durations[entry], set())
            return self.durations[entry]
        path = path | {entry}
        function = self.cfg.functions[entry]
        now = start_cycle
        handled_loops = set()
        for start in function.blocks:  # address order
            containing = function.loops_containing(start)
            if containing:
                outer = containing[0]
                if outer.header in handled_loops:
                    continue
                handled_loops.add(outer.header)
                duration = self._loop_duration(entry, outer)
                for member in sorted(outer.body):
                    self._window_add(member, now, now + duration)
                    target = self.cfg.blocks[member].call_target
                    if target is not None and target in self.cfg.functions:
                        self._flat_windows(target, now, now + duration,
                                           set())
                now += duration
                continue
            block = self.cfg.blocks[start]
            cost = sum(_instruction_cost(instruction)
                       for _, instruction in block.instructions)
            self._window_add(start, now, now + cost)
            now += cost
            target = block.call_target
            if target is not None and target in self.cfg.functions:
                now += self._walk_windows(target, now, path)
        return now - start_cycle

    def _assign_windows(self):
        if self.cfg.entry in self.cfg.functions:
            return self._walk_windows(self.cfg.entry, 0, frozenset())
        return 0

    def _total_cycles_hi(self):
        total = 0
        for start, count in self.block_counts.items():
            if count.bounds.hi is None:
                return None
            worst = sum(_worst_cost(instruction) for _, instruction
                        in self.cfg.blocks[start].instructions)
            total += count.bounds.hi * worst
        return total

    # --- stack footprint --------------------------------------------------

    def stack_footprint_estimate(self):
        """Worst-path pushed bytes, with a recursion depth heuristic."""
        local = {}
        for entry, function in self.cfg.functions.items():
            pushed = 0
            for start in function.blocks:
                for _, instruction in self.cfg.blocks[start].instructions:
                    if instruction.mnemonic is Mnemonic.PUSH:
                        pushed += 4 * len(instruction.operands[0].value)
            local[entry] = pushed
        depth = {}
        for entry in reversed(self._scc_order):
            own = local.get(entry, 0)
            if entry in self._recursive:
                own *= RECURSION_DEPTH_ESTIMATE
            deepest = max((depth.get(callee, 0) for callee
                           in self._callees.get(entry, ())), default=0)
            depth[entry] = own + deepest
        if self.cfg.entry in depth:
            return depth[self.cfg.entry]
        return max(depth.values(), default=0)


def build_static_profile(program, include_stack=True):
    """Derive a :class:`StaticProfile` without running the program."""
    analysis = ProgramAnalysis(program)
    return _StaticProfileBuilder(analysis, include_stack).build()


class _StaticProfileBuilder:
    def __init__(self, analysis, include_stack):
        self.analysis = analysis
        self.include_stack = include_stack
        self.program = analysis.program
        blocks = enumerate_blocks(self.program, include_stack=include_stack)
        self.stats = {block.name: BlockStats(block) for block in blocks}
        self.bounds = {block.name: BlockAccessBounds() for block in blocks}
        self.touch_windows = {}  # block name -> (begin, end)
        self.unknown_reads = ZERO_COUNT
        self.unknown_writes = ZERO_COUNT

    # --- helpers ----------------------------------------------------------

    def _touch(self, name, window):
        if window is None:
            return
        current = self.touch_windows.get(name)
        if current is None:
            self.touch_windows[name] = window
        else:
            self.touch_windows[name] = (min(current[0], window[0]),
                                        max(current[1], window[1]))

    def _data_like_names(self):
        return [name for name, stats in self.stats.items()
                if stats.kind.is_data_like]

    def _record(self, name, count, is_write, window, references=None):
        stats = self.stats.get(name)
        if stats is None:
            return
        bounds = self.bounds[name]
        if is_write:
            stats.writes += count.est
            bounds.writes = bounds.writes + count.bounds
        else:
            stats.reads += count.est
            bounds.reads = bounds.reads + count.bounds
        stats.references += (references if references is not None
                             else count.est)
        self._touch(name, window)

    # --- build ------------------------------------------------------------

    def build(self):
        analysis = self.analysis
        self._fetch_counts()
        self._data_counts()
        self._stack_shape()
        self._timeline()
        self._ace()
        total_instructions = sum(
            count.est * len(analysis.cfg.blocks[start].instructions)
            for start, count in analysis.block_counts.items())
        profile = StaticProfile(
            program=self.program,
            blocks=self.stats,
            total_cycles=analysis.total_cycles_est,
            total_instructions=total_instructions,
            source_name=self.program.source_name,
            bounds=self.bounds,
            assumptions=list(analysis.assumptions),
        )
        return profile

    def _fetch_counts(self):
        analysis = self.analysis
        cfg = analysis.cfg
        block_of_address = {}
        for start, block in cfg.blocks.items():
            for address, _ in block.instructions:
                block_of_address[address] = start
        call_entries = {}  # code block name -> Count of calls into it
        for caller in cfg.functions:
            caller_count = analysis.entry_counts[caller]
            for start, target in analysis.call_sites_of(caller):
                site = caller_count * analysis.rel_counts[(caller, start)]
                code_block = self.program.code_block_at(target)
                if code_block is not None:
                    previous = call_entries.get(code_block.name,
                                                ZERO_COUNT)
                    call_entries[code_block.name] = previous + site

        for name, stats in self.stats.items():
            if stats.kind is not BlockKind.CODE:
                continue
            fetched = ZERO_COUNT
            block = stats.block
            address = block.home_start
            while address < block.home_end:
                start = block_of_address.get(address)
                if start is not None:
                    fetched = fetched + analysis.block_count(start)
                address += 4
            stats.reads = fetched.est
            self.bounds[name].reads = fetched.bounds
            self.bounds[name].writes = CountBounds(0, 0)
            entries = call_entries.get(name, ZERO_COUNT)
            if block.contains(self.program.entry):
                entries = entries + ONE_COUNT
            stats.references = max(entries.est, 1 if fetched.est else 0)
            stats.stack_calls = entries.est

    def _data_counts(self):
        analysis = self.analysis
        cfg = analysis.cfg
        for entry, function in cfg.functions.items():
            invocation = analysis.entry_counts[entry]
            for start in function.blocks:
                base = invocation * analysis.rel_counts[(entry, start)]
                if base.bounds.hi == 0 and base.est == 0:
                    continue
                window = analysis.windows.get(start)
                for address, instruction in cfg.blocks[start].instructions:
                    self._data_site(function, start, address, instruction,
                                    base, window)
        unknown = self.unknown_reads + self.unknown_writes
        if unknown.bounds.hi != 0 or unknown.est != 0:
            # An unresolvable address may touch any data-like block:
            # drop the upper bounds and spread the estimate evenly so
            # heavily-accessed pointer-chasing code still ranks its
            # arrays above untouched objects.
            names = self._data_like_names()
            for name in names:
                bounds = self.bounds[name]
                bounds.reads = CountBounds(bounds.reads.lo, None)
                bounds.writes = CountBounds(bounds.writes.lo, None)
                stats = self.stats[name]
                stats.reads += self.unknown_reads.est // len(names)
                stats.writes += self.unknown_writes.est // len(names)
            self.analysis.assumptions.append(
                "unresolved address: data upper bounds dropped, "
                "%d reads / %d writes spread over %d blocks"
                % (self.unknown_reads.est, self.unknown_writes.est,
                   len(names)))

    def _data_site(self, function, start, address, instruction, base,
                   window):
        mnemonic = instruction.mnemonic
        count = base
        if instruction.condition is not Condition.AL:
            count = count.conditional()
        if mnemonic in (Mnemonic.PUSH, Mnemonic.POP):
            if self.include_stack:
                width = len(instruction.operands[0].value)
                self._record(STACK_BLOCK_NAME, count.scaled(width),
                             is_write=mnemonic is Mnemonic.PUSH,
                             window=window, references=count.est)
            return
        if mnemonic not in (Mnemonic.LDR, Mnemonic.LDRB,
                            Mnemonic.STR, Mnemonic.STRB):
            return
        if len(instruction.operands) != 3:
            return  # address generation / will not execute
        is_write = instruction.is_store
        constant, regions = self.analysis.constprop.address_regions(
            function, start, address, instruction)
        if constant is not None:
            target = self._block_at(constant)
            if target is not None:
                self._record(target, count, is_write, window)
            return
        regions = [region for region in sorted(regions)
                   if region in self.stats]
        if not regions:
            if is_write:
                self.unknown_writes = self.unknown_writes + count
            else:
                self.unknown_reads = self.unknown_reads + count
            return
        if len(regions) == 1:
            self._record(regions[0], count, is_write, window)
            return
        # the access hits exactly one of several candidates per
        # execution: upper bound each with the full count, split the
        # estimate, and claim no lower bound
        split = Count(CountBounds(0, count.bounds.hi),
                      max(count.est // len(regions), 1))
        for region in regions:
            self._record(region, split, is_write, window)

    def _block_at(self, address):
        for name, stats in self.stats.items():
            if stats.block.kind.is_data_like and (
                    stats.block.contains(address)):
                return name
        return None

    def _stack_shape(self):
        """Mirror the dynamic profiler's footprint shrink, statically."""
        stack = self.stats.get(STACK_BLOCK_NAME)
        if stack is None:
            return
        touched = (stack.reads or stack.writes
                   or self.bounds[STACK_BLOCK_NAME].reads.hi != 0
                   or self.bounds[STACK_BLOCK_NAME].writes.hi != 0)
        if not touched:
            return
        footprint = self.analysis.stack_footprint_estimate()
        footprint = max((footprint + 63) // 64 * 64, 64)
        footprint = min(footprint, stack.block.size)
        stack.block = ProgramBlock(
            name=stack.block.name,
            kind=stack.block.kind,
            home_start=stack.block.home_end - footprint,
            size=footprint,
        )

    def _timeline(self):
        analysis = self.analysis
        for name, stats in self.stats.items():
            if stats.kind is BlockKind.CODE:
                window = None
                for start, bounds in analysis.windows.items():
                    block_address = analysis.cfg.blocks[start].start
                    if stats.block.contains(block_address):
                        window = (bounds if window is None else
                                  (min(window[0], bounds[0]),
                                   max(window[1], bounds[1])))
                if window is not None:
                    self._touch(name, window)
        for name, window in self.touch_windows.items():
            stats = self.stats.get(name)
            if stats is None:
                continue
            stats.first_touch_cycle = int(window[0])
            stats.last_touch_cycle = int(window[1])
            stats.active_cycles = int(window[1] - window[0])

    def _ace(self):
        analysis = self.analysis
        ace_hi = analysis.total_cycles_hi
        total = analysis.total_cycles_est
        for name, stats in self.stats.items():
            bounds = self.bounds[name]
            if stats.kind is BlockKind.CODE:
                # instruction words are read-only: every cycle between
                # first and last fetch is vulnerable-ish; estimate with
                # the activity span
                stats.ace_cycles = stats.life_time
            elif stats.accesses:
                reads, writes = stats.reads, stats.writes
                if reads == 0 and writes:
                    # written, never read back: exposed from the last
                    # write to the end of the run (AceTracker.finish)
                    stats.ace_cycles = max(
                        total - stats.last_touch_cycle, 0)
                else:
                    fraction = reads / max(reads + writes, 1)
                    stats.ace_cycles = int(stats.life_time * fraction)
            bounds.ace_cycles = CountBounds(
                0, ace_hi if stats.accesses or (
                    stats.kind is BlockKind.CODE) else 0)
