"""Access accounting shared by all memory devices.

Every device keeps an :class:`AccessStats`: read/write counts, bytes moved,
cycles spent, and dynamic energy.  An :class:`EnergyModel` holds the
technology-derived per-access scalars (produced by
:mod:`repro.tech.nvsim_lite`), so devices stay technology-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyModel:
    """Per-access dynamic energy (joules) and leakage power (watts)."""

    read_energy: float = 0.0
    write_energy: float = 0.0
    leakage_power: float = 0.0

    def scaled(self, factor):
        """Return a copy with all components multiplied by ``factor``."""
        return EnergyModel(
            read_energy=self.read_energy * factor,
            write_energy=self.write_energy * factor,
            leakage_power=self.leakage_power * factor,
        )


@dataclass
class AccessStats:
    """Mutable counters accumulated by one device or region."""

    reads: int = 0
    writes: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    read_cycles: int = 0
    write_cycles: int = 0
    dynamic_energy: float = 0.0

    @property
    def accesses(self):
        return self.reads + self.writes

    @property
    def total_cycles(self):
        return self.read_cycles + self.write_cycles

    def record_read(self, size, cycles, energy):
        self.reads += 1
        self.read_bytes += size
        self.read_cycles += cycles
        self.dynamic_energy += energy

    def record_write(self, size, cycles, energy):
        self.writes += 1
        self.write_bytes += size
        self.write_cycles += cycles
        self.dynamic_energy += energy

    def merge(self, other):
        """Accumulate another stats object into this one."""
        self.reads += other.reads
        self.writes += other.writes
        self.read_bytes += other.read_bytes
        self.write_bytes += other.write_bytes
        self.read_cycles += other.read_cycles
        self.write_cycles += other.write_cycles
        self.dynamic_energy += other.dynamic_energy
        return self

    def copy(self):
        return AccessStats(
            reads=self.reads,
            writes=self.writes,
            read_bytes=self.read_bytes,
            write_bytes=self.write_bytes,
            read_cycles=self.read_cycles,
            write_cycles=self.write_cycles,
            dynamic_energy=self.dynamic_energy,
        )

    def reset(self):
        self.reads = 0
        self.writes = 0
        self.read_bytes = 0
        self.write_bytes = 0
        self.read_cycles = 0
        self.write_cycles = 0
        self.dynamic_energy = 0.0
