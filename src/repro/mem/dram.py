"""Off-chip DRAM backing store.

A single flat device covering the program's text, data, and stack address
space.  Word accesses pay the full off-chip latency; the DMA engine and
cache line fills use the cheaper per-burst-word figure.
"""

from __future__ import annotations

from .device import MemoryDevice


class DramDevice(MemoryDevice):
    """Off-chip SDRAM: large, slow, and (per the paper's scope) assumed
    protected by its own means — soft errors are evaluated only within the
    SPM, so DRAM vulnerability is out of scope."""

    technology_tag = "dram"

    def __init__(self, name, base, size, latency=50, burst_word_latency=4,
                 energy_model=None):
        super().__init__(name, base, size, read_latency=latency,
                         write_latency=latency, energy_model=energy_model)
        self.burst_word_latency = burst_word_latency

    @property
    def is_soft_error_immune(self):
        return True  # out of evaluation scope, not physically immune

    def burst_cycles(self, num_words):
        """Cycle cost of a burst of ``num_words`` sequential words."""
        if num_words <= 0:
            return 0
        return self.read_latency + (num_words - 1) * self.burst_word_latency
