"""Memory-system substrate: devices, cache, scratchpads, and routing.

The hierarchy mirrors the paper's platform (Table IV):

* an instruction SPM and a data SPM, each built from one or more
  :class:`~repro.mem.device.MemoryDevice` regions (SRAM or STT-RAM),
* an 8 KB L1 cache in front of off-chip DRAM for every reference that is
  not currently mapped into an SPM,
* a DMA engine that implements the online phase's block transfers.

Accesses carry per-region latency and energy, and STT-RAM regions track
per-word write counts for the endurance analysis (Table III / Fig. 8).
"""

from .stats import AccessStats, EnergyModel
from .device import AccessResult, MemoryDevice
from .sram import SramDevice
from .sttram import SttRamDevice
from .dram import DramDevice
from .cache import Cache, CacheStats
from .spm import Scratchpad, build_scratchpad
from .hierarchy import AccessType, MemorySystem
from .dma import DmaEngine, TransferRecord

__all__ = [
    "AccessStats",
    "EnergyModel",
    "AccessResult",
    "MemoryDevice",
    "SramDevice",
    "SttRamDevice",
    "DramDevice",
    "Cache",
    "CacheStats",
    "Scratchpad",
    "build_scratchpad",
    "AccessType",
    "MemorySystem",
    "DmaEngine",
    "TransferRecord",
]
