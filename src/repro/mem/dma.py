"""DMA engine for the online phase's block transfers.

The paper's second (on-line) phase copies blocks between off-chip memory
and the SPM at the program points chosen by the mapping tool, via inserted
transfer instructions.  The engine models each transfer as a DRAM burst
plus per-word writes into the destination region, charging cycles and
energy — but it keeps this traffic in its *own* accounting, because the
paper explicitly excludes the initial copy writes from the per-block
profiles ("these operations are performed just once before the first
running of the blocks").  STT-RAM wear, however, is physical and is always
recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import MemoryAccessError
from .stats import AccessStats
from .sttram import SttRamDevice

_WORD = 4

#: Sequential burst words cost a fraction of a random DRAM access — the
#: row is already open and the interface is pipelined.
BURST_ENERGY_FRACTION = 0.25


@dataclass(frozen=True)
class TransferRecord:
    """One completed DMA transfer, for reports and tests."""

    direction: str  # "map" (DRAM -> SPM) or "writeback" (SPM -> DRAM)
    home_address: int
    spm_address: int
    size: int
    cycles: int
    energy: float


@dataclass
class DmaEngine:
    """Block mover between DRAM and the SPMs."""

    memory: object  # MemorySystem
    records: list = field(default_factory=list)
    stats_by_device: dict = field(default_factory=dict)
    total_cycles: int = 0
    total_energy: float = 0.0

    def _device_stats(self, name):
        return self.stats_by_device.setdefault(name, AccessStats())

    def _words(self, size):
        return (size + _WORD - 1) // _WORD

    def map_block(self, home_address, size, spm_address):
        """Copy DRAM -> SPM and install the remap entry."""
        memory = self.memory
        data = memory.dram.peek_bytes(home_address, size)
        spm = memory._spm_for(spm_address)
        region = spm.region_of(spm_address)
        if not region.contains(spm_address, size):
            raise MemoryAccessError(
                "DMA destination straddles SPM regions", address=spm_address)
        region.poke_bytes(spm_address, data)
        if isinstance(region, SttRamDevice):
            region.note_bulk_write(spm_address, size)
        words = self._words(size)
        cycles = memory.dram.burst_cycles(words) + words * region.write_latency
        energy = words * (
            memory.dram.energy_model.read_energy * BURST_ENERGY_FRACTION
            + region.energy_model.write_energy)
        self._device_stats(region.name).record_write(size, cycles, energy)
        self._device_stats("dram").record_read(size, 0, 0.0)
        memory.install_remap(home_address, size, spm_address)
        record = TransferRecord("map", home_address, spm_address, size,
                                cycles, energy)
        self._finish(record)
        return record

    def unmap_block(self, home_address, write_back=True):
        """Remove a remap entry, optionally copying the SPM copy home."""
        memory = self.memory
        entry = memory.remove_remap(home_address)
        spm = memory._spm_for(entry.spm_address)
        region = spm.region_of(entry.spm_address)
        cycles = 0
        energy = 0.0
        if write_back:
            data = region.peek_bytes(entry.spm_address, entry.size)
            memory.dram.poke_bytes(entry.home_start, data)
            words = self._words(entry.size)
            cycles = (words * region.read_latency
                      + memory.dram.burst_cycles(words))
            energy = words * (
                region.energy_model.read_energy
                + memory.dram.energy_model.write_energy
                * BURST_ENERGY_FRACTION)
            self._device_stats(region.name).record_read(
                entry.size, cycles, energy)
            self._device_stats("dram").record_write(entry.size, 0, 0.0)
        record = TransferRecord("writeback" if write_back else "drop",
                                entry.home_start, entry.spm_address,
                                entry.size, cycles, energy)
        self._finish(record)
        return record

    def _finish(self, record):
        self.records.append(record)
        self.total_cycles += record.cycles
        self.total_energy += record.energy

    def reset(self):
        self.records.clear()
        self.stats_by_device.clear()
        self.total_cycles = 0
        self.total_energy = 0.0
