"""STT-RAM device: soft-error immune, wear-limited storage.

Per the paper (and [9] therein), STT-RAM cells are immune to
radiation-induced upsets, so :attr:`is_soft_error_immune` is True and the
fault injector skips these regions.  The device tracks per-word write
counts so the endurance evaluation (Table III, Fig. 8) can find the
hottest cell — lifetime is bounded by the *maximum* per-cell write rate,
not the average.
"""

from __future__ import annotations

import numpy as np

from ..config import Protection
from .device import MemoryDevice

_WORD = 4


class SttRamDevice(MemoryDevice):
    """Non-volatile STT-RAM storage with per-word wear tracking."""

    technology_tag = "stt-ram"

    def __init__(self, name, base, size, read_latency=1, write_latency=10,
                 energy_model=None):
        super().__init__(name, base, size, read_latency, write_latency,
                         energy_model)
        self.protection = Protection.IMMUNE
        self._word_writes = np.zeros((size + _WORD - 1) // _WORD,
                                     dtype=np.uint64)

    @property
    def is_soft_error_immune(self):
        return True

    def _note_write(self, offset, size):
        first = offset // _WORD
        last = (offset + size - 1) // _WORD
        self._word_writes[first:last + 1] += 1

    def note_bulk_write(self, address, size):
        """Record wear for a DMA bulk write (which bypasses ``write``)."""
        offset = self._offset(address, size)
        self._note_write(offset, size)

    @property
    def max_word_writes(self):
        """Write count of the most-written word (the wear-out bound)."""
        if self._word_writes.size == 0:
            return 0
        return int(self._word_writes.max())

    @property
    def total_word_writes(self):
        return int(self._word_writes.sum())

    def word_write_counts(self):
        """Copy of the per-word write counters (for tests and reports)."""
        return self._word_writes.copy()

    def reset_wear(self):
        self._word_writes[:] = 0
