"""Address routing: SPM windows, block remapping, cache, and DRAM.

The CPU issues accesses with the program's *home* addresses (text, data,
stack, all resident in off-chip DRAM).  The online phase of the mapping
algorithm installs **remap entries** — "this home range currently lives at
this SPM address" — exactly as the paper's inserted transfer instructions
make the code address the SPM copy.  The router consults the remap table
first; unmapped references go through the L1 cache to DRAM.

Every routed access is published on the memory system's
:class:`~repro.events.EventBus` as a typed
:class:`~repro.events.AccessEvent`; the profiler, trace recorder, energy
ledger, and ACE tracker all subscribe to that one stream.  The legacy
``add_observer`` positional-callback API remains as a thin adapter.

Accesses that straddle a live mapping boundary are rejected in both
directions: one that *starts* inside a mapping but runs past its end,
and the symmetric partial overlap that starts just below a mapping and
ends inside it.  Either would otherwise silently touch the stale DRAM
copy of the mapped bytes.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass

from ..errors import ConfigurationError, MemoryAccessError
from ..events import EventBus, EventKind, LegacyObserverAdapter
from .cache import Cache
from .dram import DramDevice
from .spm import build_scratchpad
from .stats import EnergyModel

ISPM_BASE = 0x4000_0000
DSPM_BASE = 0x5000_0000


class AccessType(enum.Enum):
    """What kind of reference the CPU issued."""

    FETCH = "fetch"
    DATA = "data"


@dataclass(frozen=True)
class RemapEntry:
    """One live block mapping: home range -> SPM address."""

    home_start: int
    size: int
    spm_address: int

    @property
    def home_end(self):
        return self.home_start + self.size

    def translate(self, address):
        return self.spm_address + (address - self.home_start)


class MemorySystem:
    """The full memory side of the simulated platform."""

    def __init__(self, config, energy_models=None):
        energy_models = energy_models or {}
        self.config = config
        self.dram = DramDevice(
            "dram", 0, config.off_chip.size,
            latency=config.off_chip.latency,
            burst_word_latency=config.off_chip.burst_word_latency,
            energy_model=energy_models.get("dram", EnergyModel()),
        )
        self.cache = Cache(
            "l1-cache", self.dram,
            size=config.cache.size,
            line_size=config.cache.line_size,
            associativity=config.cache.associativity,
            latency=config.cache.latency,
            energy_model=energy_models.get("cache", EnergyModel()),
        )
        self.instruction_spm = build_scratchpad(
            config.instruction_spm, ISPM_BASE, energy_models)
        self.data_spm = build_scratchpad(
            config.data_spm, DSPM_BASE, energy_models)
        self._remap_starts = []  # sorted home_start keys
        self._remap_entries = []  # parallel RemapEntry list
        #: bumped on every remap-table change; route caches (the fast
        #: engine's per-block fetch routes) key their validity on it.
        self.remap_version = 0
        self.events = EventBus()
        self._legacy_adapters = {}

    # --- observers (legacy adapter over the event bus) ----------------------

    def add_observer(self, callback):
        """Register ``callback(access_type, home_address, size, is_write,
        device_name, cycles)``; called on every architectural access.

        Legacy API: the callback is wrapped as a subscriber on
        :attr:`events`.  New code should subscribe to the bus directly.
        """
        adapter = LegacyObserverAdapter(callback)
        self._legacy_adapters[callback] = adapter
        self.events.subscribe(adapter)

    def remove_observer(self, callback):
        self.events.unsubscribe(self._legacy_adapters.pop(callback))

    # --- remapping (online phase) --------------------------------------------

    def install_remap(self, home_start, size, spm_address):
        """Declare that ``[home_start, home_start+size)`` now lives in SPM."""
        spm = self._spm_for(spm_address)
        if not spm.contains(spm_address, size):
            raise MemoryAccessError(
                "remap target does not fit in SPM %s" % spm.name,
                address=spm_address)
        entry = RemapEntry(home_start, size, spm_address)
        index = bisect.bisect_left(self._remap_starts, home_start)
        if index < len(self._remap_entries):
            if self._remap_entries[index].home_start < entry.home_end:
                raise ConfigurationError(
                    "remap overlaps an existing entry")
        if index > 0 and self._remap_entries[index - 1].home_end > home_start:
            raise ConfigurationError("remap overlaps an existing entry")
        self._remap_starts.insert(index, home_start)
        self._remap_entries.insert(index, entry)
        self.remap_version += 1
        return entry

    def remove_remap(self, home_start):
        """Drop the remap entry anchored at ``home_start``."""
        index = bisect.bisect_left(self._remap_starts, home_start)
        if (index == len(self._remap_entries)
                or self._remap_entries[index].home_start != home_start):
            raise ConfigurationError(
                "no remap entry at 0x%08x" % home_start)
        entry = self._remap_entries.pop(index)
        self._remap_starts.pop(index)
        self.remap_version += 1
        return entry

    def remap_for(self, address):
        """Return the live remap entry covering ``address``, or None."""
        index = bisect.bisect_right(self._remap_starts, address) - 1
        if index >= 0:
            entry = self._remap_entries[index]
            if entry.home_start <= address < entry.home_end:
                return entry
        return None

    def live_remaps(self):
        return list(self._remap_entries)

    def _spm_for(self, spm_address):
        if self.instruction_spm.contains(spm_address):
            return self.instruction_spm
        if self.data_spm.contains(spm_address):
            return self.data_spm
        raise MemoryAccessError(
            "address is not inside any SPM", address=spm_address)

    # --- routed accesses -------------------------------------------------------

    def access(self, address, size, is_write, value=0,
               access_type=AccessType.DATA):
        """Route one architectural access and return its AccessResult.

        ``address`` is always the home (program) address; remapping to the
        SPM is internal, mirroring the paper's rewritten load/stores.
        """
        entry = self.remap_for(address)
        if entry is not None:
            if address + size > entry.home_end:
                # Falling through would silently read the stale DRAM copy
                # of the mapped bytes; no sane placement produces this.
                raise MemoryAccessError(
                    "access straddles a mapped block boundary",
                    address=address)
            spm_address = entry.translate(address)
            spm = self._spm_for(spm_address)
            if is_write:
                result = spm.write(spm_address, size, value)
            else:
                result = spm.read(spm_address, size)
        elif self._straddles_next_remap(address, size):
            # The symmetric partial overlap: starting just below a live
            # mapping and ending inside it.  Routing it to DRAM would
            # silently touch the stale copy of the mapped tail bytes.
            raise MemoryAccessError(
                "access straddles into a mapped block",
                address=address)
        elif self.instruction_spm.contains(address, size):
            result = (self.instruction_spm.write(address, size, value)
                      if is_write else self.instruction_spm.read(address, size))
        elif self.data_spm.contains(address, size):
            result = (self.data_spm.write(address, size, value)
                      if is_write else self.data_spm.read(address, size))
        elif self.dram.contains(address, size):
            result = self.cache.access(address, size, is_write, value)
        else:
            raise MemoryAccessError("unmapped address", address=address)
        if is_write:
            kind = EventKind.WRITE
        elif access_type is AccessType.FETCH:
            kind = EventKind.FETCH
        else:
            kind = EventKind.READ
        self.events.publish_access(kind, address, size, result.device_name,
                                   result.cycles, result.energy)
        return result

    def constant_fetch_route(self, start, size):
        """Classify how reads of ``[start, start + size)`` would route
        *right now* (valid until :attr:`remap_version` changes).

        Returns ``("spm", device)`` when every read in the range is
        serviced by one constant-latency SPM device (whole range under a
        single remap entry, or directly inside one SPM region),
        ``("cache",)`` when the whole range misses the remap table and
        the SPMs and goes through the L1 cache, and ``("mixed",)`` for
        anything else — ranges straddling a mapping edge, a region
        boundary, or unmapped space, which the caller must route
        per-access through :meth:`access` to reproduce its exact
        adjudication (including its errors).
        """
        entry = self.remap_for(start)
        if entry is not None:
            if start + size > entry.home_end:
                return ("mixed",)
            spm_start = entry.translate(start)
            spm = self._spm_for(spm_start)
            device = spm.region_of(spm_start)
            if device.contains(spm_start, size):
                return ("spm", device)
            return ("mixed",)
        if self._straddles_next_remap(start, size):
            return ("mixed",)
        for spm in (self.instruction_spm, self.data_spm):
            if spm.contains(start, size):
                device = spm.region_of(start)
                if device.contains(start, size):
                    return ("spm", device)
                return ("mixed",)
            if spm.contains(start) or spm.contains(start + size - 1):
                return ("mixed",)
        if self.dram.contains(start, size):
            return ("cache",)
        return ("mixed",)

    def _straddles_next_remap(self, address, size):
        """True if ``[address, address+size)`` runs into a live mapping
        whose start lies strictly inside the access."""
        index = bisect.bisect_right(self._remap_starts, address)
        return (index < len(self._remap_starts)
                and self._remap_starts[index] < address + size)

    # --- raw access for the loader / fault injector -----------------------------

    def peek_bytes(self, address, size):
        entry = self.remap_for(address)
        if entry is not None and address + size <= entry.home_end:
            spm_address = entry.translate(address)
            return self._spm_for(spm_address).region_of(
                spm_address).peek_bytes(spm_address, size)
        if self.dram.contains(address, size):
            return self.dram.peek_bytes(address, size)
        spm = self._spm_for(address)
        return spm.region_of(address).peek_bytes(address, size)

    def poke_bytes(self, address, data):
        entry = self.remap_for(address)
        if entry is not None and address + len(data) <= entry.home_end:
            spm_address = entry.translate(address)
            self._spm_for(spm_address).region_of(
                spm_address).poke_bytes(spm_address, data)
            return
        if self.dram.contains(address, len(data)):
            self.dram.poke_bytes(address, data)
            return
        spm = self._spm_for(address)
        spm.region_of(address).poke_bytes(address, data)

    # --- bookkeeping -------------------------------------------------------------

    def all_devices(self):
        """Every leaf storage device (SPM regions and DRAM)."""
        return (list(self.instruction_spm.devices)
                + list(self.data_spm.devices) + [self.dram])

    def spm_devices(self):
        return (list(self.instruction_spm.devices)
                + list(self.data_spm.devices))

    def total_leakage_power(self):
        """Leakage of the SPM arrays (the quantity Figs. 6 compares)."""
        return (self.instruction_spm.leakage_power()
                + self.data_spm.leakage_power())

    def reset_stats(self):
        for device in self.all_devices():
            device.reset_stats()
        self.cache.reset_stats()
