"""Base memory device: addressable storage with latency/energy accounting.

A device owns a byte array covering ``[base, base + size)``.  Reads and
writes return an :class:`AccessResult` with the cycle cost so the CPU model
can charge it; energy is accumulated into the device's
:class:`~repro.mem.stats.AccessStats`.

Devices also expose raw (unaccounted) ``peek``/``poke`` used by the loader,
the DMA engine's bulk copies (which do their own cost model), and the fault
injector (a particle strike is not an architectural access).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MemoryAccessError
from .stats import AccessStats, EnergyModel


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one architectural access.

    ``energy`` is the dynamic energy charged to the servicing device for
    this access (also accumulated into its stats); the event bus carries
    it so energy consumers can subscribe instead of polling devices.
    """

    value: int
    cycles: int
    device_name: str
    energy: float = 0.0


class MemoryDevice:
    """Byte-addressable storage with per-access latency and energy."""

    #: subclasses set a human-readable technology tag
    technology_tag = "generic"

    def __init__(self, name, base, size, read_latency, write_latency,
                 energy_model=None):
        if size <= 0:
            raise MemoryAccessError("device %r must have positive size" % name)
        self.name = name
        self.base = base
        self.size = size
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.energy_model = energy_model or EnergyModel()
        self.stats = AccessStats()
        self._storage = bytearray(size)

    # --- address helpers ----------------------------------------------------

    @property
    def end(self):
        return self.base + self.size

    def contains(self, address, size=1):
        return self.base <= address and address + size <= self.end

    def _offset(self, address, size):
        if not self.contains(address, size):
            raise MemoryAccessError(
                "access outside device %r [0x%08x, 0x%08x)"
                % (self.name, self.base, self.end), address=address)
        return address - self.base

    # --- architectural accesses ----------------------------------------------

    def read(self, address, size):
        """Perform an accounted read; returns an :class:`AccessResult`."""
        offset = self._offset(address, size)
        value = int.from_bytes(self._storage[offset:offset + size], "little")
        cycles = self.read_latency
        energy = self.energy_model.read_energy
        self.stats.record_read(size, cycles, energy)
        return AccessResult(value=value, cycles=cycles,
                            device_name=self.name, energy=energy)

    def write(self, address, size, value):
        """Perform an accounted write; returns an :class:`AccessResult`."""
        offset = self._offset(address, size)
        self._storage[offset:offset + size] = (
            value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        cycles = self.write_latency
        energy = self.energy_model.write_energy
        self.stats.record_write(size, cycles, energy)
        self._note_write(offset, size)
        return AccessResult(value=value, cycles=cycles,
                            device_name=self.name, energy=energy)

    def _note_write(self, offset, size):
        """Hook for subclasses that track wear (STT-RAM endurance)."""

    # --- raw access (loader, DMA bulk copy, fault injection) ------------------

    def peek_bytes(self, address, size):
        offset = self._offset(address, size)
        return bytes(self._storage[offset:offset + size])

    def poke_bytes(self, address, data):
        offset = self._offset(address, len(data))
        self._storage[offset:offset + len(data)] = data

    def peek_word(self, address):
        return int.from_bytes(self.peek_bytes(address, 4), "little")

    def poke_word(self, address, value):
        self.poke_bytes(address, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def flip_bits(self, address, bit_positions):
        """Flip the given bit positions of the byte(s) starting at ``address``.

        Used by the fault injector; costs no cycles and no energy.  Bit
        positions may span multiple bytes (position 8 is bit 0 of the next
        byte).
        """
        for position in bit_positions:
            byte_index = self._offset(address + position // 8, 1)
            self._storage[byte_index] ^= 1 << (position % 8)

    def leakage_energy(self, seconds):
        """Static energy burned over a window of ``seconds``."""
        return self.energy_model.leakage_power * seconds

    def reset_stats(self):
        self.stats.reset()

    def __repr__(self):
        return "<%s %r [0x%08x, 0x%08x)>" % (
            type(self).__name__, self.name, self.base, self.end)
