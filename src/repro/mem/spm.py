"""Scratchpad built from heterogeneous regions (the paper's hybrid SPM).

A :class:`Scratchpad` lays its regions out contiguously from a base
address in the order they appear in the :class:`~repro.config.SpmConfig`
(parity, then SEC-DED, then STT-RAM for FTSPM's data SPM) and routes each
access to the owning region's device, which carries its own latency and
energy model.
"""

from __future__ import annotations

from ..config import MemoryTechnology
from ..errors import ConfigurationError, MemoryAccessError
from .sram import SramDevice
from .sttram import SttRamDevice
from .stats import AccessStats, EnergyModel


class Scratchpad:
    """An SPM composed of one or more device regions."""

    def __init__(self, name, base, devices):
        if not devices:
            raise ConfigurationError("scratchpad %r has no regions" % name)
        self.name = name
        self.base = base
        self.devices = list(devices)
        cursor = base
        for device in self.devices:
            if device.base != cursor:
                raise ConfigurationError(
                    "region %r of SPM %r is not contiguous" %
                    (device.name, name))
            cursor = device.end
        self.end = cursor
        self.size = self.end - self.base

    def contains(self, address, size=1):
        return self.base <= address and address + size <= self.end

    def region_of(self, address):
        """Return the device owning ``address``; raise if outside the SPM."""
        for device in self.devices:
            if device.contains(address):
                return device
        raise MemoryAccessError(
            "address outside SPM %r" % self.name, address=address)

    def region_named(self, name):
        for device in self.devices:
            if device.name == name:
                return device
        raise ConfigurationError(
            "SPM %r has no region named %r" % (self.name, name))

    def read(self, address, size):
        device = self.region_of(address)
        if not device.contains(address, size):
            raise MemoryAccessError(
                "access straddles SPM regions", address=address)
        return device.read(address, size)

    def write(self, address, size, value):
        device = self.region_of(address)
        if not device.contains(address, size):
            raise MemoryAccessError(
                "access straddles SPM regions", address=address)
        return device.write(address, size, value)

    def aggregate_stats(self):
        """Sum of all region stats."""
        total = AccessStats()
        for device in self.devices:
            total.merge(device.stats)
        return total

    def leakage_power(self):
        return sum(device.energy_model.leakage_power
                   for device in self.devices)

    def reset_stats(self):
        for device in self.devices:
            device.reset_stats()


def build_scratchpad(spm_config, base, energy_models=None):
    """Instantiate a :class:`Scratchpad` from an :class:`SpmConfig`.

    ``energy_models`` maps region name -> :class:`EnergyModel`; regions
    without an entry get a zero model (useful in unit tests that only care
    about functional behaviour or latency).
    """
    energy_models = energy_models or {}
    devices = []
    cursor = base
    for region in spm_config.regions:
        model = energy_models.get(region.name, EnergyModel())
        if region.technology is MemoryTechnology.STT_RAM:
            device = SttRamDevice(
                region.name, cursor, region.size,
                read_latency=region.read_latency,
                write_latency=region.write_latency,
                energy_model=model,
            )
        elif region.technology is MemoryTechnology.SRAM:
            device = SramDevice(
                region.name, cursor, region.size,
                read_latency=region.read_latency,
                write_latency=region.write_latency,
                energy_model=model,
                protection=region.protection,
            )
        else:
            raise ConfigurationError(
                "unsupported SPM region technology %r" % region.technology)
        devices.append(device)
        cursor = device.end
    return Scratchpad(spm_config.name, base, devices)
