"""SRAM device, optionally carrying a protection scheme tag.

The protection scheme does not change functional behaviour here — ECC
encode/decode happens in :mod:`repro.ecc` during fault-injection runs — but
it determines the latency (Table IV: parity overlaps the access, SEC-DED
costs an extra cycle) and the redundancy energy added by the technology
model.
"""

from __future__ import annotations

from ..config import Protection
from .device import MemoryDevice


class SramDevice(MemoryDevice):
    """Volatile SRAM storage, vulnerable to radiation-induced bit flips."""

    technology_tag = "sram"

    def __init__(self, name, base, size, read_latency=1, write_latency=1,
                 energy_model=None, protection=Protection.NONE):
        super().__init__(name, base, size, read_latency, write_latency,
                         energy_model)
        self.protection = protection

    @property
    def is_soft_error_immune(self):
        return False
