"""Set-associative L1 cache model (timing/energy), backed by DRAM.

The backing DRAM device remains the storage of record — the cache keeps
tags and LRU state only, so functional values are always consistent while
timing behaves like a write-back, write-allocate cache: hits cost the
cache latency, misses add a line-fill burst, and dirty evictions add a
write-back burst.

This is the 8 KB unprotected-SRAM instruction/data cache of Table IV that
serves every reference falling outside the SPM windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .device import AccessResult
from .stats import AccessStats, EnergyModel


@dataclass
class CacheStats:
    """Hit/miss accounting on top of the raw access counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    accesses_stats: AccessStats = field(default_factory=AccessStats)

    @property
    def accesses(self):
        return self.hits + self.misses

    @property
    def miss_rate(self):
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class _Line:
    __slots__ = ("tag", "valid", "dirty", "lru")

    def __init__(self):
        self.tag = 0
        self.valid = False
        self.dirty = False
        self.lru = 0


class Cache:
    """LRU set-associative cache in front of a :class:`DramDevice`."""

    def __init__(self, name, backing, size, line_size=32, associativity=4,
                 latency=1, energy_model=None):
        if line_size & (line_size - 1) or line_size < 4:
            raise ConfigurationError("line size must be a power of two >= 4")
        num_lines = size // line_size
        if num_lines % associativity:
            raise ConfigurationError(
                "cache geometry invalid: %d lines, %d ways"
                % (num_lines, associativity))
        self.name = name
        self.backing = backing
        self.size = size
        self.line_size = line_size
        self.associativity = associativity
        self.latency = latency
        self.energy_model = energy_model or EnergyModel()
        self.num_sets = num_lines // associativity
        self._sets = [[_Line() for _ in range(associativity)]
                      for _ in range(self.num_sets)]
        self._tick = 0
        self.stats = CacheStats()

    # --- geometry -------------------------------------------------------------

    def _locate(self, address):
        line_address = address // self.line_size
        return line_address % self.num_sets, line_address // self.num_sets

    # --- access ---------------------------------------------------------------

    def access(self, address, size, is_write, value=None):
        """One architectural access through the cache.

        Returns an :class:`AccessResult` whose cycles include any line fill
        or write-back that the access triggered.
        """
        self._tick += 1
        set_index, tag = self._locate(address)
        lines = self._sets[set_index]
        cycles = self.latency
        line = self._find(lines, tag)
        if line is None:
            self.stats.misses += 1
            line, penalty = self._fill(lines, tag)
            cycles += penalty
        else:
            self.stats.hits += 1
        line.lru = self._tick
        if is_write:
            line.dirty = True
            self.backing.poke_bytes(
                address, (value & ((1 << (8 * size)) - 1)).to_bytes(
                    size, "little"))
            energy = self.energy_model.write_energy
            self.stats.accesses_stats.record_write(size, cycles, energy)
            read_value = value
        else:
            read_value = int.from_bytes(
                self.backing.peek_bytes(address, size), "little")
            energy = self.energy_model.read_energy
            self.stats.accesses_stats.record_read(size, cycles, energy)
        return AccessResult(value=read_value, cycles=cycles,
                            device_name=self.name, energy=energy)

    def _find(self, lines, tag):
        for line in lines:
            if line.valid and line.tag == tag:
                return line
        return None

    def _fill(self, lines, tag):
        """Allocate a line for ``tag``; return (line, extra cycles)."""
        victim = min(lines, key=lambda line: (line.valid, line.lru))
        words_per_line = self.line_size // 4
        penalty = self.backing.burst_cycles(words_per_line)
        # Charge the fill traffic to the DRAM's stats as one burst read;
        # burst words are cheaper than random accesses.
        burst_fraction = 0.25
        self.backing.stats.record_read(
            self.line_size, penalty,
            self.backing.energy_model.read_energy * words_per_line
            * burst_fraction)
        if victim.valid:
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
                writeback = self.backing.burst_cycles(words_per_line)
                penalty += writeback
                self.backing.stats.record_write(
                    self.line_size, writeback,
                    self.backing.energy_model.write_energy * words_per_line
                    * burst_fraction)
        victim.tag = tag
        victim.valid = True
        victim.dirty = False
        return victim, penalty

    # --- maintenance -----------------------------------------------------------

    def flush(self):
        """Invalidate every line; dirty lines are charged as write-backs."""
        cycles = 0
        words_per_line = self.line_size // 4
        for lines in self._sets:
            for line in lines:
                if line.valid and line.dirty:
                    self.stats.writebacks += 1
                    cycles += self.backing.burst_cycles(words_per_line)
                line.valid = False
                line.dirty = False
        return cycles

    def reset_stats(self):
        self.stats = CacheStats()
