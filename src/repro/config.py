"""System configurations, including the Table IV presets from the paper.

The paper evaluates three SPM organisations on the same processor:

* **baseline pure SRAM SPM** — 16 KB SEC-DED SRAM instruction SPM and
  16 KB SEC-DED SRAM data SPM (2-clock read and write),
* **baseline pure STT-RAM (NVM) SPM** — 16 KB STT-RAM instruction and data
  SPMs (1-clock read, 10-clock write),
* **FTSPM** — 16 KB STT-RAM instruction SPM; a data SPM made of a 2 KB
  parity-protected SRAM region (1 clock), a 2 KB SEC-DED SRAM region
  (2 clocks) and a 12 KB STT-RAM region (1-clock read, 10-clock write).

All three share an 8 KB unprotected SRAM L1 instruction/data cache with
1-clock access for references that miss the SPM address windows.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field, replace

from .errors import ConfigurationError
from .units import kilobytes


class MemoryTechnology(enum.Enum):
    """Underlying cell technology of a memory region."""

    SRAM = "sram"
    STT_RAM = "stt-ram"
    DRAM = "dram"


class Protection(enum.Enum):
    """Soft-error protection scheme applied to a memory region."""

    NONE = "unprotected"
    PARITY = "parity"
    SECDED = "sec-ded"
    IMMUNE = "immune"  # STT-RAM cells: no radiation-induced upsets

    @property
    def is_sram_scheme(self):
        """True for the schemes that apply redundancy to SRAM cells."""
        return self in (Protection.PARITY, Protection.SECDED)


@dataclass(frozen=True)
class RegionConfig:
    """One physically homogeneous region of an SPM.

    ``read_latency`` and ``write_latency`` are in CPU clock cycles and come
    straight from Table IV of the paper.
    """

    name: str
    technology: MemoryTechnology
    protection: Protection
    size: int
    read_latency: int
    write_latency: int

    def __post_init__(self):
        if self.size <= 0:
            raise ConfigurationError(
                "region %r must have a positive size" % self.name)
        if self.read_latency < 1 or self.write_latency < 1:
            raise ConfigurationError(
                "region %r latencies must be at least one cycle" % self.name)
        if (self.technology is MemoryTechnology.STT_RAM
                and self.protection is not Protection.IMMUNE):
            raise ConfigurationError(
                "STT-RAM regions are modelled as soft-error immune; "
                "region %r must use Protection.IMMUNE" % self.name)
        if (self.technology is MemoryTechnology.SRAM
                and self.protection is Protection.IMMUNE):
            raise ConfigurationError(
                "SRAM region %r cannot be declared immune" % self.name)


@dataclass(frozen=True)
class CacheConfig:
    """L1 cache used for references outside the SPM windows (Table IV)."""

    size: int = kilobytes(8)
    line_size: int = 32
    associativity: int = 4
    latency: int = 1
    technology: MemoryTechnology = MemoryTechnology.SRAM
    protection: Protection = Protection.NONE

    def __post_init__(self):
        if self.size % (self.line_size * self.associativity) != 0:
            raise ConfigurationError(
                "cache size must be a multiple of line_size * associativity")


@dataclass(frozen=True)
class SpmConfig:
    """An SPM composed of one or more regions laid out contiguously."""

    name: str
    regions: tuple

    def __post_init__(self):
        if not self.regions:
            raise ConfigurationError("SPM %r has no regions" % self.name)
        names = [region.name for region in self.regions]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                "SPM %r has duplicate region names: %r" % (self.name, names))

    @property
    def size(self):
        """Total capacity in bytes across all regions."""
        return sum(region.size for region in self.regions)

    def region(self, name):
        """Return the region called ``name``; raise if absent."""
        for region in self.regions:
            if region.name == name:
                return region
        raise ConfigurationError(
            "SPM %r has no region named %r" % (self.name, name))


@dataclass(frozen=True)
class OffChipConfig:
    """Off-chip DRAM backing store.

    FaCSim models an embedded SDRAM; the exact miss penalty is not in the
    paper, so we use a typical embedded-class figure and expose it here so
    sweeps can vary it.
    """

    size: int = 8 * kilobytes(1024)  # 8 MB covers text, data and stack
    latency: int = 50  # cycles per word access
    burst_word_latency: int = 4  # per additional word within a DMA burst


@dataclass(frozen=True)
class SystemConfig:
    """A complete simulated platform: CPU clock, cache, SPMs, off-chip."""

    name: str
    clock_hz: float = 400e6  # FaCSim models an ARM9-class embedded core
    word_size: int = 4
    cache: CacheConfig = field(default_factory=CacheConfig)
    instruction_spm: SpmConfig = None
    data_spm: SpmConfig = None
    off_chip: OffChipConfig = field(default_factory=OffChipConfig)
    technology_node_nm: int = 40

    def __post_init__(self):
        if self.instruction_spm is None or self.data_spm is None:
            raise ConfigurationError(
                "system %r needs both an instruction SPM and a data SPM"
                % self.name)
        if self.clock_hz <= 0:
            raise ConfigurationError("clock frequency must be positive")

    @property
    def cycle_time(self):
        """Duration of one CPU clock cycle, in seconds."""
        return 1.0 / self.clock_hz

    def with_data_spm(self, data_spm):
        """Return a copy of this config with a different data SPM."""
        return replace(self, data_spm=data_spm)


# --- region factories -------------------------------------------------------

def sram_region(name, size, protection=Protection.NONE):
    """An SRAM region with Table IV latencies for its protection scheme.

    Parity checking overlaps the access (1 clock); SEC-DED adds a cycle for
    encode/decode (2 clocks), matching Table IV.
    """
    latency = 2 if protection is Protection.SECDED else 1
    return RegionConfig(
        name=name,
        technology=MemoryTechnology.SRAM,
        protection=protection,
        size=size,
        read_latency=latency,
        write_latency=latency,
    )


def sttram_region(name, size):
    """An STT-RAM region: 1-clock read, 10-clock write (Table IV)."""
    return RegionConfig(
        name=name,
        technology=MemoryTechnology.STT_RAM,
        protection=Protection.IMMUNE,
        size=size,
        read_latency=1,
        write_latency=10,
    )


# --- Table IV presets -------------------------------------------------------

def baseline_sram_config():
    """Pure SEC-DED SRAM SPM baseline (first column of Table IV)."""
    return SystemConfig(
        name="baseline-sram",
        instruction_spm=SpmConfig(
            name="I-SPM",
            regions=(sram_region("ispm-secded", kilobytes(16),
                                 Protection.SECDED),),
        ),
        data_spm=SpmConfig(
            name="D-SPM",
            regions=(sram_region("dspm-secded", kilobytes(16),
                                 Protection.SECDED),),
        ),
    )


def baseline_sttram_config():
    """Pure STT-RAM SPM baseline (second column of Table IV)."""
    return SystemConfig(
        name="baseline-sttram",
        instruction_spm=SpmConfig(
            name="I-SPM",
            regions=(sttram_region("ispm-stt", kilobytes(16)),),
        ),
        data_spm=SpmConfig(
            name="D-SPM",
            regions=(sttram_region("dspm-stt", kilobytes(16)),),
        ),
    )


def ftspm_config(parity_kb=2, secded_kb=2, stt_kb=12):
    """The FTSPM hybrid structure (third column of Table IV).

    The region split of the 16 KB data SPM is parameterised so the
    region-sizing ablation can sweep it; defaults match the paper.
    """
    return SystemConfig(
        name="ftspm",
        instruction_spm=SpmConfig(
            name="I-SPM",
            regions=(sttram_region("ispm-stt", kilobytes(16)),),
        ),
        data_spm=SpmConfig(
            name="D-SPM",
            regions=(
                sram_region("dspm-parity", kilobytes(parity_kb),
                            Protection.PARITY),
                sram_region("dspm-secded", kilobytes(secded_kb),
                            Protection.SECDED),
                sttram_region("dspm-stt", kilobytes(stt_kb)),
            ),
        ),
    )


ALL_PRESETS = {
    "baseline-sram": baseline_sram_config,
    "baseline-sttram": baseline_sttram_config,
    "ftspm": ftspm_config,
}


# --- execution knobs ---------------------------------------------------------

class ExecutionKnob:
    """One process-wide execution choice: CLI flag + env var + default.

    The engine (``reference|fast|auto``) and injector (``trial|batch|
    auto``) knobs surface with the same shape everywhere: an argparse
    flag with fixed choices, an environment variable that fresh worker
    processes read, a process-wide default, and a typo-rejecting
    validator.  This class is the single definition that the CLI
    (``campaign``/``inject``/``serve``/``submit``), the campaign
    runner, and the job service share instead of keeping per-command
    copies in sync.  Both knobs are *result-invariant* — they change
    throughput, never counts — which is why they stay out of artifact
    keys and job-coalescing keys.
    """

    def __init__(self, name, env, choices, resolve, set_default,
                 help_text):
        self.name = name
        self.env = env
        self.choices = tuple(choices)
        self._resolve = resolve
        self._set_default = set_default
        self.help_text = help_text

    @property
    def flag(self):
        return "--" + self.name

    def add_argument(self, parser):
        """Attach the knob's flag to an argparse parser."""
        parser.add_argument(self.flag, choices=self.choices, default=None,
                            help=self.help_text)

    def resolve(self, value):
        """Validate ``value`` (``None`` passes through untouched)."""
        if value is None:
            return None
        self._resolve(value)  # raises on typos
        return value

    def set_default(self, value):
        """Install the process default; returns the previous one."""
        return self._set_default(value)

    def installed(self, value):
        """``with knob.installed(value):`` — scoped default + env.

        Sets the process default *and* exports the environment
        variable (so freshly spawned worker processes inherit the
        choice), restoring both on exit.  ``value=None`` is a no-op,
        letting call sites pass optional knobs through unconditionally.
        """
        from contextlib import contextmanager

        @contextmanager
        def _install():
            if value is None:
                yield
                return
            previous = self._set_default(value)
            environment_before = os.environ.get(self.env)
            os.environ[self.env] = value
            try:
                yield
            finally:
                self._set_default(previous)
                if environment_before is None:
                    os.environ.pop(self.env, None)
                else:
                    os.environ[self.env] = environment_before

        return _install()


def engine_knob():
    """The simulation-engine knob (see :mod:`repro.sim.fastpath`)."""
    from .sim.fastpath import ENGINE_ENV, ENGINES, resolve_engine, \
        set_default_engine

    return ExecutionKnob(
        "engine", ENGINE_ENV, ENGINES, resolve_engine, set_default_engine,
        help_text="execution engine (default: auto, or REPRO_ENGINE; "
                  "results are identical, only speed differs)")


def injector_knob():
    """The shard-evaluator knob (see :mod:`repro.campaign.batch`)."""
    from .campaign.batch import INJECTOR_ENV, INJECTORS, \
        resolve_injector, set_default_injector

    return ExecutionKnob(
        "injector", INJECTOR_ENV, INJECTORS, resolve_injector,
        set_default_injector,
        help_text="shard evaluator (default: auto, or REPRO_INJECTOR; "
                  "batch reproduces trial's counts exactly, only speed "
                  "differs)")


def preset(name):
    """Look up a configuration preset by name."""
    try:
        factory = ALL_PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            "unknown preset %r (choose from %s)"
            % (name, ", ".join(sorted(ALL_PRESETS)))) from None
    return factory()
