"""A minimal asyncio HTTP/1.1 server over stdlib streams.

No framework, no dependency: requests are parsed straight off an
``asyncio`` stream reader, dispatched to one async handler, and
answered with ``Connection: close`` semantics (one exchange per
connection keeps the parser honest and is plenty for a job-submission
API whose work dwarfs connection setup).  The handler receives an
:class:`HttpRequest` and returns an :class:`HttpResponse`; raising
:class:`HttpError` short-circuits into a JSON error payload with that
status.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote, urlsplit

MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 65536
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 413: "Payload Too Large", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Raise inside a handler to answer with a specific status."""

    def __init__(self, status, message):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: dict
    headers: dict  # lower-cased names
    body: bytes

    def json(self):
        """Decode the body as a JSON object (400 on anything else)."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise HttpError(400, "invalid JSON body: %s" % error) from None
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload


@dataclass
class HttpResponse:
    """One response; :meth:`json` and :meth:`text` build common cases."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict = field(default_factory=dict)

    @classmethod
    def json(cls, payload, status=200):
        body = (json.dumps(payload, sort_keys=True, indent=1) + "\n")
        return cls(status=status, body=body.encode("utf-8"))

    @classmethod
    def text(cls, text, status=200,
             content_type="text/plain; version=0.0.4; charset=utf-8"):
        return cls(status=status, body=text.encode("utf-8"),
                   content_type=content_type)

    def encode(self):
        reason = _REASONS.get(self.status, "Unknown")
        lines = ["HTTP/1.1 %d %s" % (self.status, reason),
                 "Content-Type: %s" % self.content_type,
                 "Content-Length: %d" % len(self.body),
                 "Connection: close"]
        for name, value in self.headers.items():
            lines.append("%s: %s" % (name, value))
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("latin-1") + self.body


async def read_request(reader):
    """Parse one request off ``reader``; None on a closed connection."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    if len(request_line) > MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    try:
        method, target, _version = (
            request_line.decode("latin-1").strip().split(" ", 2))
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    headers = {}
    total = 0
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HttpError(400, "headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise HttpError(400, "bad Content-Length") from None
    if length > MAX_BODY_BYTES:
        raise HttpError(413, "body exceeds %d bytes" % MAX_BODY_BYTES)
    body = await reader.readexactly(length) if length else b""
    parts = urlsplit(target)
    query = {name: values[-1]
             for name, values in parse_qs(parts.query).items()}
    return HttpRequest(method=method.upper(), path=unquote(parts.path),
                       query=query, headers=headers, body=body)


class HttpServer:
    """Bind, accept, parse, dispatch — the whole server."""

    def __init__(self, handler, host="127.0.0.1", port=0):
        self.handler = handler
        self.host = host
        self.port = port  # updated to the bound port after start()
        self._server = None

    async def start(self):
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def _serve_connection(self, reader, writer):
        try:
            try:
                request = await read_request(reader)
            except HttpError as error:
                response = HttpResponse.json(
                    {"error": error.message}, status=error.status)
            except asyncio.IncompleteReadError:
                return
            else:
                if request is None:
                    return
                try:
                    response = await self.handler(request)
                except HttpError as error:
                    response = HttpResponse.json(
                        {"error": error.message}, status=error.status)
                except Exception as error:  # never drop the connection
                    response = HttpResponse.json(
                        {"error": "internal error: %s" % error},
                        status=500)
            writer.write(response.encode())
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def stop(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
