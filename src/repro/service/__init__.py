"""The async campaign/mapping job service.

``repro.service`` turns the batch CLI into a traffic-serving system:
an asyncio HTTP API (stdlib only) accepts mapping, campaign, lint, and
profile jobs, runs the cheap analytic ones on a thread executor over
one shared :class:`~repro.pipeline.context.EvaluationContext`, and
dispatches campaign shards through one persistent work-stealing
:class:`~repro.campaign.scheduler.ShardScheduler` pool shared by every
concurrent job.

Identical requests never compute twice: each job is keyed by the same
SHA-256 content-hash discipline as pipeline artifacts, an in-flight
job with the same key absorbs new submissions
(:class:`~repro.service.coalesce.Coalescer`), and completed results
are served straight from the artifact store — including across server
restarts when a ``--cache-dir`` store is attached.

HTTP surface (see ``docs/service.md``)::

    POST /v1/jobs             submit {"kind": ..., "params": {...}}
    GET  /v1/jobs             list jobs
    GET  /v1/jobs/{id}        status + progress
    GET  /v1/jobs/{id}/result result payload (409 until done)
    GET  /metrics             Prometheus text exposition
    GET  /healthz             liveness + drain state
"""

from .app import ReproService
from .client import ServiceClient, ServiceError
from .coalesce import Coalescer
from .http import HttpError, HttpRequest, HttpResponse, HttpServer
from .jobs import Job, JobRegistry, JobState

__all__ = [
    "Coalescer",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "Job",
    "JobRegistry",
    "JobState",
    "ReproService",
    "ServiceClient",
    "ServiceError",
]
