"""Blocking client for the job service, over stdlib ``http.client``.

The CLI's ``repro submit`` and the test/CI harnesses all talk to the
server through this thin wrapper: one request per call, JSON in and
out, and a :meth:`ServiceClient.wait` helper that polls a job to
completion.  Errors the server reports as ``{"error": ...}`` payloads
surface as :class:`ServiceError` with the HTTP status attached.
"""

from __future__ import annotations

import http.client
import json
import time


class ServiceError(Exception):
    """A non-2xx answer from the service."""

    def __init__(self, status, message):
        super().__init__("HTTP %d: %s" % (status, message))
        self.status = status
        self.message = message


class ServiceClient:
    """Talk to one ``ReproService`` instance at ``host:port``."""

    def __init__(self, host="127.0.0.1", port=8787, timeout=60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # --- transport --------------------------------------------------------------

    def _request(self, method, path, payload=None):
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                # sort_keys keeps request bodies byte-stable, so wire
                # captures and request-log diffs reproduce exactly
                body = json.dumps(payload,
                                  sort_keys=True).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            status = response.status
        finally:
            connection.close()
        content = raw.decode("utf-8", errors="replace")
        if status >= 400:
            message = content.strip()
            try:
                message = json.loads(content).get("error", message)
            except ValueError:
                pass
            raise ServiceError(status, message)
        return status, content

    def _json(self, method, path, payload=None):
        _status, content = self._request(method, path, payload)
        return json.loads(content)

    # --- API --------------------------------------------------------------------

    def submit(self, kind, **params):
        """Submit a job; returns the status payload (with ``id``)."""
        return self._json("POST", "/v1/jobs",
                          {"kind": kind, "params": params})

    def jobs(self):
        return self._json("GET", "/v1/jobs")["jobs"]

    def status(self, job_id):
        return self._json("GET", "/v1/jobs/%s" % job_id)

    def result(self, job_id):
        return self._json("GET", "/v1/jobs/%s/result" % job_id)

    def runs(self, since=None):
        """Run-ledger summaries (404s unless served with --ledger)."""
        path = "/v1/runs"
        if since is not None:
            from urllib.parse import quote

            path += "?since=%s" % quote(str(since), safe="")
        return self._json("GET", path)["runs"]

    def run(self, run_id):
        """One full run-ledger record by id (unique prefixes work)."""
        return self._json("GET", "/v1/runs/%s" % run_id)["run"]

    def metrics(self):
        """The raw Prometheus text exposition."""
        _status, content = self._request("GET", "/metrics")
        return content

    def health(self):
        return self._json("GET", "/healthz")

    def wait(self, job_id, timeout=300.0, interval=0.05):
        """Poll ``job_id`` until done/failed; returns the final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    "job %s still %s after %.1fs"
                    % (job_id, status["state"], timeout))
            time.sleep(interval)
