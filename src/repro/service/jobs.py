"""Job model and thread-safe registry for the service.

A :class:`Job` is one submitted request moving through ``queued →
running → done|failed``.  A job that attached to another in-flight
computation (see :mod:`repro.service.coalesce`) carries
``coalesced_with`` — the primary job's id — and proxies its state and
result from the primary, so every submitter polls their own job id and
still reads exactly one shared computation.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional


class JobState:
    """String states, chosen to sort a status column sensibly."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Job:
    """One submitted request and everything observable about it."""

    id: str
    kind: str  # "mapping" | "campaign" | "lint" | "profile"
    params: dict
    key: str  # content-hash coalescing/artifact key
    state: str = JobState.QUEUED
    error: Optional[str] = None
    result: Optional[dict] = None
    progress: dict = field(default_factory=dict)
    #: primary job id when this submission coalesced onto another
    coalesced_with: Optional[str] = None
    #: "inflight" | "store" | None — how (if) this job avoided computing
    coalesced_from: Optional[str] = None
    #: injectable clock: timestamps come from here, never from
    #: ``time.time()`` inline, so tests pin them and status responses
    #: are deterministic under a fake clock
    clock: Callable[[], float] = time.time
    submitted_at: Optional[float] = None
    finished_at: Optional[float] = None
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def __post_init__(self):
        if self.submitted_at is None:
            self.submitted_at = self.clock()

    # --- transitions (thread-safe) ----------------------------------------------

    def mark_running(self):
        with self._lock:
            self.state = JobState.RUNNING

    def mark_done(self, result):
        with self._lock:
            self.result = result
            self.state = JobState.DONE
            self.finished_at = self.clock()

    def mark_failed(self, error):
        with self._lock:
            self.error = str(error)
            self.state = JobState.FAILED
            self.finished_at = self.clock()

    def update_progress(self, **fields):
        with self._lock:
            self.progress.update(fields)

    # --- API projections --------------------------------------------------------

    def to_status(self):
        with self._lock:
            payload = {
                "id": self.id,
                "kind": self.kind,
                "state": self.state,
                "key": self.key,
                "params": dict(self.params),
                "submitted_at": self.submitted_at,
                "finished_at": self.finished_at,
            }
            if self.progress:
                payload["progress"] = dict(self.progress)
            if self.error is not None:
                payload["error"] = self.error
            if self.coalesced_with is not None:
                payload["coalesced_with"] = self.coalesced_with
            if self.coalesced_from is not None:
                payload["coalesced_from"] = self.coalesced_from
            return payload


class JobRegistry:
    """All jobs this server has seen, addressable by id."""

    def __init__(self, clock=None):
        self._lock = threading.Lock()
        self._jobs = {}
        self._ids = itertools.count(1)
        self._clock = clock if clock is not None else time.time

    def create(self, kind, params, key):
        with self._lock:
            job = Job(id="job-%06d" % next(self._ids), kind=kind,
                      params=params, key=key, clock=self._clock)
            self._jobs[job.id] = job
            return job

    def get(self, job_id):
        with self._lock:
            return self._jobs.get(job_id)

    def all(self):
        with self._lock:
            return list(self._jobs.values())

    def __len__(self):
        with self._lock:
            return len(self._jobs)

    # --- coalescing-aware reads -------------------------------------------------

    def resolve(self, job):
        """The job whose computation ``job`` observes (itself, or the
        primary it coalesced onto)."""
        primary = job
        seen = set()
        while primary.coalesced_with is not None:
            if primary.id in seen:  # defensive: never loop
                break
            seen.add(primary.id)
            target = self.get(primary.coalesced_with)
            if target is None:
                break
            primary = target
        return primary

    def status_of(self, job):
        """Status projection with coalesced state/progress folded in."""
        primary = self.resolve(job)
        payload = job.to_status()
        if primary is not job:
            upstream = primary.to_status()
            payload["state"] = upstream["state"]
            if "progress" in upstream:
                payload["progress"] = upstream["progress"]
            if "error" in upstream:
                payload["error"] = upstream["error"]
        return payload

    def result_of(self, job):
        """(state, result) through any coalescing indirection."""
        primary = self.resolve(job)
        with primary._lock:
            return primary.state, primary.result, primary.error
