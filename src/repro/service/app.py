"""The service core: routes, job lifecycle, coalescing, drain.

:class:`ReproService` glues the layers together:

* one shared :class:`~repro.pipeline.context.EvaluationContext`
  (optionally disk-backed) — every job's simulations, profiles, and
  plans are memoized artifacts, exactly as in the batch CLI,
* one persistent :class:`~repro.campaign.scheduler.ShardScheduler`
  worker pool — concurrent campaign jobs share it and steal each
  other's idle slots,
* a thread executor for the cheap analytic jobs (mapping, profile,
  lint) and for the campaign coordinators that block on the pool,
* the :class:`~repro.service.coalesce.Coalescer` plus the artifact
  store, so identical configs cost one computation ever.

Graceful drain: ``begin_drain()`` makes every new ``POST /v1/jobs``
answer 503, drops the scheduler's pending shards (in-flight ones
finish and checkpoint), and lets running jobs conclude before
``shutdown()`` stops the listener — what SIGTERM/SIGINT are wired to
under ``repro serve``.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from concurrent.futures import ThreadPoolExecutor

from .. import obs
from ..campaign import (
    DEFAULT_SHARD_SIZE,
    CampaignRunner,
    CampaignSpec,
    ShardScheduler,
    analytic_vulnerability,
)
from ..campaign.seeding import SAMPLING_DISCIPLINE
from ..config import engine_knob, injector_knob
from ..core.priorities import OptimizationMode, thresholds_for_mode
from ..errors import ReproError
from ..eval.structures import STRUCTURES
from ..pipeline import EvaluationContext, set_context
from ..pipeline.keys import artifact_key
from .coalesce import Coalescer
from .http import HttpError, HttpRequest, HttpResponse, HttpServer
from .jobs import JobRegistry, JobState

_MISS = object()

JOB_KINDS = ("mapping", "campaign", "lint", "profile")

#: per-kind parameter schema: name -> (type, default); REQUIRED means
#: the submitter must provide it.  Anything outside the schema is a
#: 400, which keeps the coalescing key space canonical.
_REQUIRED = object()

_COMMON_PARAMS = {
    "workload": (str, _REQUIRED),
    "array_words": (int, 256),
    "outer_iterations": (int, 4),
    "scale": (int, 1),
}

_KIND_PARAMS = {
    "mapping": {
        "structure": (str, "ftspm"),
        "mode": (str, "balanced"),
        "profile": (str, "dynamic"),
    },
    "profile": {
        "profile": (str, "dynamic"),
    },
    "lint": {},
    "campaign": {
        "structure": (str, "ftspm"),
        "trials": (int, 100_000),
        "seed": (int, 0xF7F7),
        "shard_size": (int, DEFAULT_SHARD_SIZE),
        "retries": (int, 2),
        "engine": (str, None),
        "injector": (str, None),
    },
}

#: result-invariant knobs: excluded from the coalescing key, because
#: engine/injector choices change throughput, never counts.
_KEY_EXCLUDED = ("engine", "injector")


def normalize_params(kind, params):
    """Apply the schema: defaults in, types coerced, unknowns out."""
    if kind not in JOB_KINDS:
        raise HttpError(400, "unknown job kind %r (one of: %s)"
                        % (kind, ", ".join(JOB_KINDS)))
    schema = dict(_COMMON_PARAMS)
    schema.update(_KIND_PARAMS[kind])
    unknown = sorted(set(params) - set(schema))
    if unknown:
        raise HttpError(400, "unknown parameter(s) for %s job: %s"
                        % (kind, ", ".join(unknown)))
    normalized = {}
    for name, (cast, default) in sorted(schema.items()):
        if name in params:
            value = params[name]
            try:
                normalized[name] = (cast(value)
                                    if value is not None else None)
            except (TypeError, ValueError):
                raise HttpError(
                    400, "parameter %r must be %s, got %r"
                    % (name, cast.__name__, value)) from None
        elif default is _REQUIRED:
            raise HttpError(400, "missing required parameter %r" % name)
        else:
            normalized[name] = default
    _validate_choices(kind, normalized)
    return normalized


def _validate_choices(kind, params):
    structure = params.get("structure")
    if structure is not None and structure not in STRUCTURES:
        raise HttpError(400, "unknown structure %r (one of: %s)"
                        % (structure, ", ".join(sorted(STRUCTURES))))
    mode = params.get("mode")
    if mode is not None and mode not in [m.value for m in
                                         OptimizationMode]:
        raise HttpError(400, "unknown mode %r" % mode)
    flavor = params.get("profile")
    if flavor is not None and flavor not in ("dynamic", "static"):
        raise HttpError(400, "profile must be 'dynamic' or 'static'")
    for knob in (engine_knob(), injector_knob()):
        value = params.get(knob.name)
        if value is not None:
            try:
                knob.resolve(value)
            except ReproError as error:
                raise HttpError(400, str(error)) from None
    for positive in ("trials", "shard_size", "array_words", "scale"):
        value = params.get(positive)
        if value is not None and value <= 0:
            raise HttpError(400, "parameter %r must be positive"
                            % positive)


def job_key(kind, params):
    """Content-hash identity of one job configuration.

    The same discipline as pipeline artifact keys; campaign keys are
    additionally salted with the sampling discipline so a change to
    the canonical strike stream orphans cached measured results
    instead of replaying them.
    """
    keyed = {name: value for name, value in params.items()
             if name not in _KEY_EXCLUDED}
    parts = [kind, keyed]
    if kind == "campaign":
        parts.append(SAMPLING_DISCIPLINE)
    return artifact_key("service-job", *parts)


class ReproService:
    """One server process: registry + coalescer + scheduler + HTTP."""

    def __init__(self, host="127.0.0.1", port=0, workers=2,
                 job_threads=8, cache_dir=None, engine=None,
                 injector=None, clock=None, ledger_path=None):
        self.context = EvaluationContext(store=cache_dir, engine=engine)
        # ``clock`` stamps job timestamps; inject a fake in tests to
        # pin submitted_at/finished_at in status responses.
        self.registry = JobRegistry(clock=clock)
        # With a ledger path every executed job leaves one durable
        # run-ledger record, and /v1/runs serves the file read-only.
        self.ledger = None
        if ledger_path:
            from ..obs.ledger import RunLedger

            self.ledger = (RunLedger(ledger_path, clock=clock)
                           if clock is not None
                           else RunLedger(ledger_path))
        self.coalescer = Coalescer()
        self.scheduler = ShardScheduler(workers=workers)
        self.server = HttpServer(self._handle, host=host, port=port)
        self.engine = engine_knob().resolve(engine)
        self.injector = injector_knob().resolve(injector)
        self._executor = ThreadPoolExecutor(
            max_workers=job_threads, thread_name_prefix="repro-job")
        self._results = {}  # key -> result (in-memory artifact tier)
        self._results_lock = threading.Lock()
        self.executed = {kind: 0 for kind in JOB_KINDS}
        self.draining = False
        self._previous_context = None

    # --- lifecycle --------------------------------------------------------------

    async def start(self):
        """Bind the listener; the service context becomes the process
        default so library code (spec builders, analytic cross-checks)
        shares its memo and store."""
        obs.enable()
        if self.ledger is not None:
            # Campaign jobs then write their own campaign records too,
            # so one service ledger tells the whole story of a run.
            obs.set_ledger(self.ledger)
        self._previous_context = set_context(self.context)
        await self.server.start()
        return self

    @property
    def port(self):
        return self.server.port

    @property
    def url(self):
        return "http://%s:%d" % (self.server.host, self.server.port)

    def begin_drain(self):
        """Refuse new submissions; drop pending shards; keep serving
        status/result/metrics reads."""
        self.draining = True
        self.scheduler.request_drain()
        obs.inc("service_drains_total", help="drain requests observed")

    async def shutdown(self):
        """Drain, wait out in-flight work, and stop the listener."""
        self.begin_drain()
        loop = asyncio.get_running_loop()
        # In-flight shards finish (and checkpoint) before the pool dies;
        # job coordinator threads then observe their partial summaries.
        await loop.run_in_executor(None, self.scheduler.drain)
        await loop.run_in_executor(
            None, lambda: self._executor.shutdown(wait=True))
        self.scheduler.close()
        await self.server.stop()
        if self.ledger is not None and obs.current_ledger() is self.ledger:
            obs.set_ledger(None)
        if self._previous_context is not None:
            set_context(self._previous_context)
            self._previous_context = None

    async def run_until_signalled(self,
                                  signals=(signal.SIGINT, signal.SIGTERM),
                                  on_ready=None):
        """``repro serve`` main loop: serve until SIGTERM/SIGINT, then
        drain gracefully and return."""
        await self.start()
        if on_ready is not None:
            on_ready()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()

        def _on_signal():
            self.begin_drain()
            stop.set()

        for sig in signals:
            loop.add_signal_handler(sig, _on_signal)
        try:
            await stop.wait()
        finally:
            for sig in signals:
                loop.remove_signal_handler(sig)
        await self.shutdown()

    # --- routing ----------------------------------------------------------------

    async def _handle(self, request: HttpRequest) -> HttpResponse:
        with obs.span("service.request", category="service", attrs={
                "method": request.method, "path": request.path}) as span:
            response = await self._route(request)
            span.set_attr("status", response.status)
        obs.inc("service_requests_total", route=self._route_label(request),
                code=str(response.status),
                help="HTTP requests by route and status code")
        return response

    @staticmethod
    def _route_label(request):
        parts = [p for p in request.path.split("/") if p]
        if len(parts) >= 2 and parts[0] == "v1" and parts[1] == "jobs":
            if len(parts) == 2:
                return "/v1/jobs"
            if len(parts) == 3:
                return "/v1/jobs/{id}"
            if len(parts) == 4 and parts[3] == "result":
                return "/v1/jobs/{id}/result"
        if len(parts) >= 2 and parts[0] == "v1" and parts[1] == "runs":
            return "/v1/runs" if len(parts) == 2 else "/v1/runs/{id}"
        return request.path

    async def _route(self, request):
        path, method = request.path, request.method
        if path == "/v1/jobs":
            if method == "POST":
                return await self._submit(request)
            if method == "GET":
                return self._list_jobs()
            raise HttpError(405, "use GET or POST on /v1/jobs")
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                raise HttpError(405, "job resources are read-only")
            parts = [p for p in path.split("/") if p]
            job = self.registry.get(parts[2])
            if job is None:
                raise HttpError(404, "no such job %r" % parts[2])
            if len(parts) == 3:
                return HttpResponse.json(self.registry.status_of(job))
            if len(parts) == 4 and parts[3] == "result":
                return self._job_result(job)
            raise HttpError(404, "unknown job resource %r" % path)
        if path == "/v1/runs" or path.startswith("/v1/runs/"):
            if method != "GET":
                raise HttpError(405, "the run ledger is read-only")
            parts = [p for p in path.split("/") if p]
            if len(parts) == 2:
                return self._list_runs(request)
            if len(parts) == 3:
                return self._show_run(parts[2])
            raise HttpError(404, "unknown run resource %r" % path)
        if path == "/metrics" and method == "GET":
            return self._metrics()
        if path == "/healthz" and method == "GET":
            return HttpResponse.json({
                "status": "draining" if self.draining else "ok",
                "jobs": len(self.registry),
                "queue_depth": self.scheduler.queue_depth,
                "inflight_shards": self.scheduler.inflight,
            })
        raise HttpError(404, "no route for %s %s" % (method, path))

    # --- submission / coalescing ------------------------------------------------

    async def _submit(self, request):
        if self.draining:
            raise HttpError(503, "server is draining; not accepting jobs")
        payload = request.json()
        kind = payload.get("kind")
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise HttpError(400, "params must be a JSON object")
        params = normalize_params(kind, params)
        key = job_key(kind, params)
        job = self.registry.create(kind, params, key)
        obs.inc("service_jobs_total", kind=kind,
                help="jobs submitted by kind")
        stored = self._recall(key)
        if stored is not _MISS:
            # Completed identical config: served straight from the
            # artifact store, no computation and no queueing.
            job.coalesced_from = "store"
            job.mark_done(stored)
            obs.inc("service_coalesce_total", outcome="store",
                    help="submissions coalesced by outcome")
            return HttpResponse.json(self.registry.status_of(job),
                                     status=200)
        leader = self.coalescer.attach_or_lead(key, job.id)
        if leader is not None:
            # Identical config already computing: attach to it.
            job.coalesced_with = leader
            job.coalesced_from = "inflight"
            return HttpResponse.json(self.registry.status_of(job),
                                     status=202)
        loop = asyncio.get_running_loop()
        loop.run_in_executor(self._executor, self._run_job, job)
        return HttpResponse.json(self.registry.status_of(job), status=202)

    def _recall(self, key):
        with self._results_lock:
            if key in self._results:
                return self._results[key]
        if self.context.store is not None:
            value = self.context.store.get(key, _MISS)
            if value is not _MISS:
                with self._results_lock:
                    self._results[key] = value
            return value
        return _MISS

    def _remember(self, key, result):
        with self._results_lock:
            self._results[key] = result
        if self.context.store is not None:
            self.context.store.put(key, result)

    # --- job execution (thread executor) ----------------------------------------

    def _run_job(self, job):
        job.mark_running()
        entry = None
        if self.ledger is not None:
            entry = self.ledger.begin(
                "service-job", key=job.key,
                knobs={"engine": job.params.get("engine") or self.engine,
                       "injector": (job.params.get("injector")
                                    or self.injector)},
                params=dict(job.params, job=job.id, job_kind=job.kind))
        with obs.span("service.job", category="service",
                      attrs={"kind": job.kind, "key": job.key[:12]}):
            try:
                result, cacheable = self._compute(job)
            except Exception as error:
                job.mark_failed(error)
                obs.inc("service_jobs_finished_total", kind=job.kind,
                        status="failed",
                        help="job completions by kind and status")
            else:
                if cacheable:
                    self._remember(job.key, result)
                job.mark_done(result)
                obs.inc("service_jobs_finished_total", kind=job.kind,
                        status="done",
                        help="job completions by kind and status")
            finally:
                self.executed[job.kind] += 1
                obs.inc("service_jobs_executed_total", kind=job.kind,
                        help="jobs that actually computed (led)")
                self.coalescer.release(job.key, job.id)
                if entry is not None:
                    self.ledger.finish(
                        entry,
                        status="ok" if job.state == JobState.DONE
                        else "failed",
                        stats={"job_state": job.state})

    def _compute(self, job):
        """Returns ``(result_dict, cacheable)`` for one leading job."""
        params = job.params
        if job.kind == "campaign":
            return self._compute_campaign(job)
        program, profile = self.context.resolve_workload(
            params["workload"], array_words=params["array_words"],
            outer_iterations=params["outer_iterations"],
            scale=params["scale"],
            profile_flavor=params.get("profile", "dynamic"))
        if job.kind == "profile":
            return self._profile_result(profile), True
        if job.kind == "lint":
            if program is None:
                raise ReproError("workload %r has no program to lint"
                                 % params["workload"])
            report = self.context.lint_of(program)
            return {
                "text": report.to_text(),
                "findings": json.loads(report.to_json()),
                "has_errors": report.has_errors,
            }, True
        # mapping
        structure = params["structure"]
        thresholds = None
        if structure == "ftspm":
            thresholds = thresholds_for_mode(
                OptimizationMode(params["mode"]))
        _, plan, mda = self.context.plan(profile, structure,
                                         thresholds=thresholds)
        result = {
            "structure": structure,
            "mode": params["mode"],
            "profile_flavor": getattr(profile, "flavor", "dynamic"),
            "table": plan.format_table(
                profile, title="MDA placement (%s, %s)"
                % (params["workload"], structure)),
            "assignments": {
                name: {"region": assignment.region_name,
                       "spm_address": assignment.spm_address}
                for name, assignment in sorted(plan.assignments.items())},
            "regions": {
                name: {"size": slot.size, "used": slot.used,
                       "protection": slot.protection.value}
                for name, slot in sorted(plan.slots.items())},
        }
        if structure == "ftspm" and mda is not None:
            result["decisions"] = [
                {"step": d.step, "block": d.block, "action": d.action,
                 "detail": d.detail} for d in mda.decisions]
        return result, True

    @staticmethod
    def _profile_result(profile):
        from ..profile.report import format_profile_table

        return {
            "flavor": getattr(profile, "flavor", "dynamic"),
            "total_cycles": profile.total_cycles,
            "total_instructions": profile.total_instructions,
            "blocks": len(profile.blocks),
            "table": format_profile_table(profile),
            "assumptions": list(getattr(profile, "assumptions", ())
                                or ()),
        }

    def _compute_campaign(self, job):
        params = job.params
        _, profile = self.context.resolve_workload(
            params["workload"], array_words=params["array_words"],
            outer_iterations=params["outer_iterations"],
            scale=params["scale"])
        spec = CampaignSpec.from_structure(
            profile, params["structure"], trials=params["trials"],
            seed=params["seed"], shard_size=params["shard_size"])

        def progress(event):
            job.update_progress(
                shards_done=event.shards_done,
                shards_total=event.shards_total,
                trials_done=event.trials_done,
                trials_total=event.trials_total,
                throughput=round(event.throughput, 1))

        runner = CampaignRunner(
            spec, max_retries=params["retries"],
            engine=params.get("engine") or self.engine,
            injector=params.get("injector") or self.injector,
            progress=progress, scheduler=self.scheduler)
        summary = runner.run()
        interval = summary.interval("harmful")
        result = {
            "workload": params["workload"],
            "structure": params["structure"],
            "trials_requested": summary.trials_requested,
            "trials_completed": summary.trials_completed,
            "complete": summary.complete,
            "drained": summary.drained,
            "counts": summary.result.to_dict(),
            "harmful_ci": {"point": interval.point, "low": interval.low,
                           "high": interval.high},
            "analytic_vulnerability": analytic_vulnerability(
                profile, params["structure"]),
            "failed_shards": summary.failed_shards,
            "elapsed_seconds": round(summary.elapsed, 3),
        }
        # A drained/partial campaign must never poison the artifact
        # store: only complete measurements are served to later
        # identical requests.
        return result, summary.complete

    # --- read-side endpoints ----------------------------------------------------

    def _list_jobs(self):
        jobs = [self.registry.status_of(job)
                for job in self.registry.all()]
        jobs.sort(key=lambda payload: payload["id"])
        return HttpResponse.json({"jobs": jobs, "count": len(jobs)})

    def _job_result(self, job):
        state, result, error = self.registry.result_of(job)
        if state == JobState.FAILED:
            return HttpResponse.json(
                {"id": job.id, "state": state, "error": error}, status=200)
        if state != JobState.DONE:
            raise HttpError(409, "job %s is %s; result not ready"
                            % (job.id, state))
        return HttpResponse.json(
            {"id": job.id, "state": state, "result": result})

    def _require_ledger(self):
        if self.ledger is None:
            raise HttpError(
                404, "run ledger not enabled (serve with --ledger FILE)")
        return self.ledger

    def _list_runs(self, request):
        from ..obs.ledger import LedgerError, parse_since

        ledger = self._require_ledger()
        since = None
        raw = request.query.get("since")
        if raw:
            try:
                since = parse_since(raw)
            except LedgerError as error:
                raise HttpError(400, str(error)) from None
        records = ledger.read(since=since)
        runs = [{"id": r.get("id"), "kind": r.get("kind"),
                 "status": r.get("status"),
                 "started_at": r.get("started_at"),
                 "wall_s": r.get("wall_s"), "key": r.get("key")}
                for r in records]
        return HttpResponse.json({"runs": runs, "count": len(runs)})

    def _show_run(self, run_id):
        from ..obs.ledger import LedgerError

        ledger = self._require_ledger()
        try:
            record = ledger.get(run_id)
        except LedgerError as error:
            raise HttpError(400, str(error)) from None
        if record is None:
            raise HttpError(404, "no such run %r" % run_id)
        return HttpResponse.json({"run": record})

    def _metrics(self):
        self.scheduler._observe_queues()  # refresh gauges at scrape time
        obs.set_gauge("service_jobs_known", len(self.registry),
                      help="jobs tracked by the registry")
        obs.set_gauge("service_draining", 1 if self.draining else 0,
                      help="1 while the server refuses new submissions")
        return HttpResponse.text(obs.prometheus_text(obs.registry()))
