"""Request coalescing keyed on content-hash job keys.

Two clients sweeping the same design point must cost one computation.
The :class:`Coalescer` tracks which job key is currently in flight;
``attach_or_lead`` either registers the caller as the *leader* for its
key or returns the job already leading it, in which case the caller
becomes a follower and simply observes the leader's result.  Keys are
the same SHA-256 content-hash discipline as pipeline artifact keys
(``repro.pipeline.keys.artifact_key``), which is what lets the service
serve *completed* keys straight from the artifact store — the store
and the in-flight table partition the request space between them.
"""

from __future__ import annotations

import threading

from .. import obs


class Coalescer:
    """In-flight computation table: key -> leading job id."""

    def __init__(self):
        self._lock = threading.Lock()
        self._leaders = {}
        self.leads = 0
        self.attaches = 0

    def attach_or_lead(self, key, job_id):
        """Returns ``None`` when ``job_id`` now leads ``key``, else the
        id of the job already leading it (attach to that one)."""
        with self._lock:
            leader = self._leaders.get(key)
            if leader is not None:
                self.attaches += 1
                obs.inc("service_coalesce_total", outcome="inflight",
                        help="submissions coalesced by outcome")
                return leader
            self._leaders[key] = job_id
            self.leads += 1
            return None

    def release(self, key, job_id):
        """Retire a finished (or failed) leader so the key can lead
        again; late identical submissions then hit the artifact store
        instead."""
        with self._lock:
            if self._leaders.get(key) == job_id:
                del self._leaders[key]

    def leader_of(self, key):
        with self._lock:
            return self._leaders.get(key)

    def inflight_keys(self):
        with self._lock:
            return list(self._leaders)
