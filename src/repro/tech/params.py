"""Per-node technology constants for the analytic array model.

The 40 nm SRAM/STT-RAM entries are calibrated so the Table IV platform
reproduces the paper's reported SPM static powers exactly:

* pure SEC-DED SRAM SPM (two 16 KB arrays): 15.8 mW,
* pure STT-RAM SPM (two 16 KB arrays): 3.0 mW,
* FTSPM (16 KB STT + 12 KB STT + 2 KB parity SRAM + 2 KB SEC-DED SRAM):
  7.1 mW.

The decomposition follows NVSim's structure: a fixed peripheral-circuit
leakage per array (decoders, sense amplifiers — similar CMOS for both
technologies) plus a per-kilobyte cell-array leakage (large for SRAM,
near zero for the non-volatile STT-RAM cells).  Dynamic energies follow a
square-root capacity law (bitline/wordline lengths grow with the array
side), anchored at a 16 KB reference array.

Other nodes scale from 40 nm with standard factors (leakage grows as
features shrink; dynamic energy shrinks roughly with node^2 for CMOS).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MemoryTechnology, Protection
from ..errors import ConfigurationError
from ..units import milliwatts, picojoules


@dataclass(frozen=True)
class CellParams:
    """Constants for one memory technology at one node."""

    peripheral_leakage: float  # watts per array instance
    cell_leakage_per_kb: float  # watts per kilobyte of cells
    read_energy_16kb: float  # joules per access at the 16 KB anchor
    write_energy_16kb: float  # joules per access at the 16 KB anchor
    cell_area_f2: float  # cell area in F^2 (per bit)


@dataclass(frozen=True)
class NodeParams:
    """All technologies at a given feature size."""

    node_nm: int
    sram: CellParams
    stt_ram: CellParams
    dram: CellParams
    gate_energy: float  # joules per logic-gate switch (ECC circuits)
    gate_delay: float  # seconds per gate (ECC circuit critical paths)
    #: probability of 1, 2, 3, >3 bit flips per particle strike
    #: (Dixit & Wood, IRPS'11 — the distribution the paper cites)
    mbu_distribution: tuple = (0.62, 0.25, 0.06, 0.07)


def _node_40nm():
    return NodeParams(
        node_nm=40,
        sram=CellParams(
            peripheral_leakage=milliwatts(1.3),
            cell_leakage_per_kb=milliwatts(0.36694),
            read_energy_16kb=picojoules(30.0),
            write_energy_16kb=picojoules(30.0),
            cell_area_f2=146.0,
        ),
        stt_ram=CellParams(
            peripheral_leakage=milliwatts(1.18),
            cell_leakage_per_kb=milliwatts(0.02),
            read_energy_16kb=picojoules(10.0),
            write_energy_16kb=picojoules(300.0),
            cell_area_f2=40.0,
        ),
        dram=CellParams(
            peripheral_leakage=milliwatts(0.0),
            cell_leakage_per_kb=milliwatts(0.0),
            # Off-chip random word access (pin + array); fixed per access,
            # not capacity-scaled (see nvsim_lite).
            read_energy_16kb=picojoules(2000.0),
            write_energy_16kb=picojoules(2000.0),
            cell_area_f2=8.0,
        ),
        gate_energy=picojoules(0.002),
        gate_delay=25e-12,
    )


def _scaled_node(node_nm, dynamic_scale, leakage_scale, mbu_distribution):
    base = _node_40nm()

    def scale(cell):
        return CellParams(
            peripheral_leakage=cell.peripheral_leakage * leakage_scale,
            cell_leakage_per_kb=cell.cell_leakage_per_kb * leakage_scale,
            read_energy_16kb=cell.read_energy_16kb * dynamic_scale,
            write_energy_16kb=cell.write_energy_16kb * dynamic_scale,
            cell_area_f2=cell.cell_area_f2,
        )

    return NodeParams(
        node_nm=node_nm,
        sram=scale(base.sram),
        stt_ram=scale(base.stt_ram),
        dram=scale(base.dram),
        gate_energy=base.gate_energy * dynamic_scale,
        gate_delay=base.gate_delay * (node_nm / 40.0),
        mbu_distribution=mbu_distribution,
    )


#: Multiple-bit-upset multiplicity per node (Dixit & Wood trend: newer
#: nodes shift from single-bit to multi-bit upsets).
TECHNOLOGY_NODES = {
    40: _node_40nm(),
    65: _scaled_node(65, dynamic_scale=2.2, leakage_scale=0.45,
                     mbu_distribution=(0.88, 0.09, 0.02, 0.01)),
    45: _scaled_node(45, dynamic_scale=1.25, leakage_scale=0.8,
                     mbu_distribution=(0.70, 0.21, 0.05, 0.04)),
    32: _scaled_node(32, dynamic_scale=0.72, leakage_scale=1.35,
                     mbu_distribution=(0.55, 0.28, 0.08, 0.09)),
    22: _scaled_node(22, dynamic_scale=0.48, leakage_scale=1.8,
                     mbu_distribution=(0.45, 0.30, 0.11, 0.14)),
}


def node_params(node_nm):
    """Look up :class:`NodeParams` for a feature size in nanometres."""
    try:
        return TECHNOLOGY_NODES[node_nm]
    except KeyError:
        raise ConfigurationError(
            "no technology parameters for %d nm (available: %s)"
            % (node_nm, ", ".join(str(n) for n in sorted(TECHNOLOGY_NODES)))
        ) from None


def cell_params(node, technology):
    """Return the :class:`CellParams` of ``technology`` at ``node``."""
    if technology is MemoryTechnology.SRAM:
        return node.sram
    if technology is MemoryTechnology.STT_RAM:
        return node.stt_ram
    if technology is MemoryTechnology.DRAM:
        return node.dram
    raise ConfigurationError("unknown technology %r" % technology)


def redundancy_factor(protection, word_bits=64):
    """Extra storage fraction required by a protection scheme.

    Parity: 1 check bit per 32-bit word.  SEC-DED: Hamming(72,64) — 8
    check bits per 64 data bits.
    """
    if protection is Protection.PARITY:
        return 1.0 + 1.0 / 32.0
    if protection is Protection.SECDED:
        return 1.0 + 8.0 / word_bits
    return 1.0
