"""Gate-level cost model for the parity and SEC-DED codec circuits.

The paper measured these with Synopsys Design Compiler; we substitute a
gate-count estimate.  Both circuits are XOR-dominated:

* **Parity (32-bit word)** — encoder: a 31-gate XOR tree, depth
  ``ceil(log2(32)) = 5``; checker: the same tree plus the stored bit.
* **Hamming SEC-DED (72,64)** — encoder: 8 parity equations over ~half of
  64 data bits each (~8 * 31 XORs); decoder: syndrome generation over 72
  bits, syndrome decode (72-way AND-tree match) and the correction XOR.

These yield the orderings Table IV encodes: parity fits inside the SRAM
access cycle; SEC-DED's deeper tree costs an extra cycle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .params import node_params


@dataclass(frozen=True)
class CodecEstimate:
    """Synthesised-circuit estimate for one codec."""

    name: str
    encode_gates: int
    decode_gates: int
    encode_depth: int
    decode_depth: int
    encode_energy: float  # joules per encoded word
    decode_energy: float  # joules per decoded word
    encode_delay: float  # seconds
    decode_delay: float  # seconds

    def fits_in_cycle(self, clock_hz, stage_fraction=0.4):
        """Whether decode fits in the memory-stage slack of one cycle.

        ``stage_fraction`` is the fraction of the cycle left after the
        array access itself.
        """
        return self.decode_delay <= stage_fraction / clock_hz

    def extra_cycles(self, clock_hz, stage_fraction=0.4):
        """Pipeline cycles added by the decoder at a given clock."""
        slack = stage_fraction / clock_hz
        if self.decode_delay <= slack:
            return 0
        return math.ceil((self.decode_delay - slack) * clock_hz)


def _estimate(name, encode_gates, decode_gates, encode_depth, decode_depth,
              node_nm, activity=0.5):
    node = node_params(node_nm)
    return CodecEstimate(
        name=name,
        encode_gates=encode_gates,
        decode_gates=decode_gates,
        encode_depth=encode_depth,
        decode_depth=decode_depth,
        encode_energy=encode_gates * node.gate_energy * activity,
        decode_energy=decode_gates * node.gate_energy * activity,
        encode_delay=encode_depth * node.gate_delay,
        decode_delay=decode_depth * node.gate_delay,
    )


def parity_codec(node_nm=40, word_bits=32):
    """Even-parity codec over one ``word_bits`` word."""
    tree_gates = word_bits - 1
    depth = math.ceil(math.log2(word_bits))
    return _estimate(
        "parity-%d" % word_bits,
        encode_gates=tree_gates,
        decode_gates=tree_gates + 1,  # recompute + compare with stored bit
        encode_depth=depth,
        decode_depth=depth + 1,
        node_nm=node_nm,
    )


def secded_codec(node_nm=40, data_bits=64):
    """Hamming SEC-DED codec (Hsiao-style) over ``data_bits`` data bits."""
    check_bits = 1
    while (1 << check_bits) < data_bits + check_bits + 1:
        check_bits += 1
    check_bits += 1  # overall parity bit for the DED property
    # Each check bit XORs roughly half the data bits.
    encode_gates = check_bits * (data_bits // 2)
    # Decode: regenerate syndrome (same tree), decode the syndrome to a
    # one-hot correction vector (one AND gate per protected bit position),
    # and apply the correction XOR.
    decode_gates = encode_gates + (data_bits + check_bits) + data_bits
    encode_depth = math.ceil(math.log2(data_bits)) + 1
    decode_depth = encode_depth + 2 + 1  # syndrome + match + correct
    return _estimate(
        "secded-%d+%d" % (data_bits, check_bits),
        encode_gates=encode_gates,
        decode_gates=decode_gates,
        encode_depth=encode_depth,
        decode_depth=decode_depth,
        node_nm=node_nm,
    )
