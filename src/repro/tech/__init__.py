"""Technology models: the NVSim / Synopsys Design Compiler substitutes.

:mod:`repro.tech.params` holds per-node, per-technology constants;
:mod:`repro.tech.nvsim_lite` turns (technology, capacity, protection) into
per-access energy, leakage power, and area, calibrated so the paper's
reported static powers (7.1 / 15.8 / 3 mW for FTSPM / pure SRAM / pure
STT-RAM at the Table IV geometry) are reproduced exactly;
:mod:`repro.tech.ecc_circuit` models the parity and SEC-DED codec
circuits at gate level.
"""

from .params import (
    TECHNOLOGY_NODES,
    NodeParams,
    node_params,
    redundancy_factor,
)
from .nvsim_lite import ArrayEstimate, ArrayModel, energy_models_for
from .ecc_circuit import CodecEstimate, parity_codec, secded_codec

__all__ = [
    "TECHNOLOGY_NODES",
    "NodeParams",
    "node_params",
    "redundancy_factor",
    "ArrayEstimate",
    "ArrayModel",
    "energy_models_for",
    "CodecEstimate",
    "parity_codec",
    "secded_codec",
]
