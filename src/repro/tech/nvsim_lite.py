"""nvsim-lite: analytic per-array energy / leakage / area model.

The real NVSim solves a circuit-level optimisation; the paper consumes
only its outputs — per-access dynamic energy, leakage power, and area per
memory array.  This module reproduces those outputs analytically:

* dynamic energy follows a square-root capacity law anchored at a 16 KB
  reference array (bitline/wordline length grows with the array side),
* leakage is a fixed peripheral term per array plus a linear per-KB cell
  term (SRAM cells leak; STT-RAM cells do not),
* protection schemes scale both by their redundancy factor and add the
  codec energy from :mod:`repro.tech.ecc_circuit`.

Constants are calibrated in :mod:`repro.tech.params` so that the Table IV
platform reproduces the paper's static powers (7.1 / 15.8 / 3.0 mW)
exactly, and the dynamic-energy orderings of Fig. 3 hold (STT-RAM write
by far the most expensive; parity SRAM the cheapest; SEC-DED in between).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import MemoryTechnology, Protection
from ..mem.stats import EnergyModel
from ..units import kilobytes
from .ecc_circuit import parity_codec, secded_codec
from .params import cell_params, node_params, redundancy_factor

_ANCHOR_BYTES = kilobytes(16)


@dataclass(frozen=True)
class ArrayEstimate:
    """nvsim-lite output for one memory array."""

    name: str
    technology: MemoryTechnology
    protection: Protection
    capacity: int
    read_energy: float  # joules per access
    write_energy: float  # joules per access
    leakage_power: float  # watts
    area_mm2: float

    @property
    def energy_model(self):
        return EnergyModel(
            read_energy=self.read_energy,
            write_energy=self.write_energy,
            leakage_power=self.leakage_power,
        )


class ArrayModel:
    """Estimator bound to one technology node."""

    def __init__(self, node_nm=40):
        self.node = node_params(node_nm)
        self.node_nm = node_nm
        self._parity = parity_codec(node_nm)
        self._secded = secded_codec(node_nm)

    # --- scaling laws ---------------------------------------------------------

    def _capacity_scale(self, capacity):
        return math.sqrt(capacity / _ANCHOR_BYTES)

    def _codec(self, protection):
        if protection is Protection.PARITY:
            return self._parity
        if protection is Protection.SECDED:
            return self._secded
        return None

    # --- public API -------------------------------------------------------------

    def estimate(self, name, technology, capacity,
                 protection=Protection.NONE):
        """Estimate one array; returns an :class:`ArrayEstimate`."""
        cell = cell_params(self.node, technology)
        redundancy = redundancy_factor(protection)
        if technology is MemoryTechnology.DRAM:
            # Off-chip access energy is interface-dominated: per access,
            # independent of the DRAM's capacity.
            scale = 1.0
        else:
            scale = self._capacity_scale(capacity * redundancy)
        read_energy = cell.read_energy_16kb * scale
        write_energy = cell.write_energy_16kb * scale
        codec = self._codec(protection)
        if codec is not None:
            read_energy += codec.decode_energy
            write_energy += codec.encode_energy
        leakage = (cell.peripheral_leakage
                   + cell.cell_leakage_per_kb
                   * (capacity * redundancy / kilobytes(1)))
        area = self._area_mm2(cell, capacity * redundancy)
        return ArrayEstimate(
            name=name,
            technology=technology,
            protection=protection,
            capacity=capacity,
            read_energy=read_energy,
            write_energy=write_energy,
            leakage_power=leakage,
            area_mm2=area,
        )

    def estimate_region(self, region):
        """Estimate a :class:`~repro.config.RegionConfig`."""
        return self.estimate(region.name, region.technology, region.size,
                             region.protection)

    def _area_mm2(self, cell, capacity_bytes):
        feature_m = self.node_nm * 1e-9
        bits = capacity_bytes * 8
        cell_area_m2 = cell.cell_area_f2 * feature_m * feature_m
        array_area = bits * cell_area_m2
        # NVSim-style peripheral overhead: ~35% for small embedded arrays.
        return array_area * 1.35 * 1e6


def energy_models_for(config, node_nm=None):
    """Build the region-name -> :class:`EnergyModel` map for a platform.

    Includes entries for every SPM region plus ``"cache"`` and ``"dram"``.
    This is the glue between :mod:`repro.config` and
    :class:`repro.mem.hierarchy.MemorySystem`.
    """
    model = ArrayModel(node_nm or config.technology_node_nm)
    models = {}
    for spm_config in (config.instruction_spm, config.data_spm):
        for region in spm_config.regions:
            models[region.name] = model.estimate_region(region).energy_model
    cache_estimate = model.estimate(
        "cache", config.cache.technology, config.cache.size,
        config.cache.protection)
    models["cache"] = cache_estimate.energy_model
    dram_estimate = model.estimate(
        "dram", MemoryTechnology.DRAM, config.off_chip.size)
    # Leakage of off-chip DRAM is out of scope (the paper compares SPM
    # structures); keep the access energy, zero the leakage.
    models["dram"] = EnergyModel(
        read_energy=dram_estimate.read_energy,
        write_energy=dram_estimate.write_energy,
        leakage_power=0.0,
    )
    return models
